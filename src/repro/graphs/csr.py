"""A graph-free adjacency container: just ``(n, indptr, indices)``.

At n = 10^5 the :class:`networkx.Graph` behind a scenario dominates both
materialize time (~10 s) and peak RSS (~500 MiB) while the event-driven
engine only ever reads the CSR arrays that :func:`repro.graphs.csr_adjacency`
derives from it.  :class:`CSRGraph` *is* those arrays — node labels are the
consecutive integers ``0 .. n-1`` (identical to the positions every builder in
:mod:`repro.graphs.topologies` produces after relabelling), the neighbours of
node ``p`` are ``indices[indptr[p]:indptr[p+1]]`` in ascending order, and both
arrays are read-only ``int64`` — byte-identical to what ``csr_adjacency``
would return for the equivalent networkx graph.

The class intentionally mirrors the handful of :class:`networkx.Graph`
surface points the scenario/event layers touch (``number_of_nodes``,
``nodes()``, ``degree``, containment) so the same code paths accept either
representation; everything graph-algorithmic (conductance, spanning trees,
the scalar/batch engines) keeps requiring the full networkx object.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CSRGraph", "csr_from_edges", "csr_bfs_distances"]


def csr_bfs_distances(
    indptr: np.ndarray, indices: np.ndarray, source: int
) -> np.ndarray:
    """BFS hop distances from ``source`` over a CSR adjacency (-1 = unreachable).

    Vectorised frontier expansion: each level gathers every neighbour of the
    frontier with one flat fancy-index, so the python-level cost is
    O(diameter) instead of O(V + E) — the event pipeline's connectivity and
    farthest-node queries at n = 10^6 stay sub-second.
    """
    n = len(indptr) - 1
    distances = np.full(n, -1, dtype=np.int64)
    distances[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Flat multi-range gather: positions of every neighbour of the frontier.
        ends = np.cumsum(counts)
        flat = np.arange(total, dtype=np.int64) + np.repeat(starts - (ends - counts), counts)
        neighbours = indices[flat]
        fresh = np.unique(neighbours[distances[neighbours] < 0])
        if fresh.size == 0:
            break
        level += 1
        distances[fresh] = level
        frontier = fresh
    return distances


def csr_from_edges(n: int, sources: np.ndarray, targets: np.ndarray) -> "CSRGraph":
    """Build a :class:`CSRGraph` from one undirected edge list.

    ``sources[i]–targets[i]`` are the distinct undirected edges (no
    duplicates, no self-loops — every generator in
    :mod:`repro.graphs.csr_builders` guarantees this by construction).  Both
    directions are emitted and sorted so each node's neighbours come out
    ascending, matching :func:`repro.graphs.csr_adjacency` byte for byte.
    """
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    src = np.concatenate([sources, targets])
    dst = np.concatenate([targets, sources])
    order = np.lexsort((dst, src))
    src = src[order]
    dst = dst[order]
    degrees = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    return CSRGraph(n, indptr, np.ascontiguousarray(dst))


class _DegreeView:
    """The tiny slice of networkx's degree view the scenario layer uses."""

    def __init__(self, graph: "CSRGraph") -> None:
        self._graph = graph

    def __getitem__(self, node: int) -> int:
        graph = self._graph
        return int(graph.indptr[node + 1] - graph.indptr[node])

    def __call__(self, node: int) -> int:
        return self[node]

    def __iter__(self):
        indptr = self._graph.indptr
        for node in range(self._graph.n):
            yield node, int(indptr[node + 1] - indptr[node])


class CSRGraph:
    """Read-only undirected graph as CSR arrays; nodes are ``0 .. n-1``.

    ``indptr`` (``n + 1`` int64) and ``indices`` (``2m`` int64, each node's
    neighbours ascending) follow exactly the :func:`repro.graphs.csr_adjacency`
    contract, so ``csr_adjacency(CSRGraph(...))`` returns the arrays as-is and
    every direct generator can be checked byte-for-byte against its networkx
    reference.
    """

    def __init__(self, n: int, indptr: np.ndarray, indices: np.ndarray) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.shape != (n + 1,):
            raise ValueError(f"indptr must have shape ({n + 1},), got {indptr.shape}")
        if indices.shape != (int(indptr[-1]),):
            raise ValueError(
                f"indices must have shape ({int(indptr[-1])},), got {indices.shape}"
            )
        indptr.setflags(write=False)
        indices.setflags(write=False)
        self.n = int(n)
        self.indptr = indptr
        self.indices = indices
        self._connected: bool | None = None

    # -- the networkx surface the scenario/event layers touch ------------
    def number_of_nodes(self) -> int:
        return self.n

    def number_of_edges(self) -> int:
        return len(self.indices) // 2

    def nodes(self) -> range:
        return range(self.n)

    def __len__(self) -> int:
        return self.n

    def __iter__(self):
        return iter(range(self.n))

    def __contains__(self, node: object) -> bool:
        return isinstance(node, (int, np.integer)) and 0 <= int(node) < self.n

    def neighbors(self, node: int):
        start, stop = int(self.indptr[node]), int(self.indptr[node + 1])
        return iter(self.indices[start:stop].tolist())

    @property
    def degree(self) -> _DegreeView:
        return _DegreeView(self)

    # -- CSR-native extras ------------------------------------------------
    def degrees(self) -> np.ndarray:
        """Degree of every node as one int64 array."""
        return np.diff(self.indptr)

    def is_connected(self) -> bool:
        """Whether the graph is connected (memoized; vectorised BFS)."""
        if self._connected is None:
            if self.n == 0:
                self._connected = True
            else:
                distances = csr_bfs_distances(self.indptr, self.indices, 0)
                self._connected = bool((distances >= 0).all())
        return self._connected

    def bfs_distances(self, source: int) -> np.ndarray:
        """BFS hop distances from ``source`` (-1 for unreachable nodes)."""
        return csr_bfs_distances(self.indptr, self.indices, source)

    # -- pickling (worker processes receive the graph by value) ----------
    def __getstate__(self) -> dict:
        return {"n": self.n, "indptr": self.indptr, "indices": self.indices}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["n"], state["indptr"], state["indices"])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CSRGraph(n={self.n}, m={self.number_of_edges()})"
