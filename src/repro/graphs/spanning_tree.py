"""Spanning trees represented as parent maps.

TAG (Section 4) runs algebraic gossip on a spanning tree in which "each node,
except the root, has a single parent" — exactly a parent map.  The queueing
reduction (Theorem 1) also starts from a BFS shortest-path tree.  This module
provides the tree data structure, BFS construction, validation, and the depth
and diameter measures the bounds refer to (``l_max``, ``d(S)``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import networkx as nx

from ..errors import TopologyError

__all__ = ["SpanningTree", "bfs_spanning_tree", "random_spanning_tree"]


@dataclass(frozen=True)
class SpanningTree:
    """A rooted spanning tree given by a parent map.

    Attributes
    ----------
    root:
        The unique node without a parent.
    parent:
        Mapping from every non-root node to its parent.
    """

    root: int
    parent: dict[int, int]

    # -- construction / validation --------------------------------------
    @classmethod
    def from_parent_map(cls, root: int, parent: dict[int, int]) -> "SpanningTree":
        """Build and validate a tree from a parent map."""
        tree = cls(root=root, parent=dict(parent))
        tree.validate()
        return tree

    def validate(self) -> None:
        """Check that the parent map is acyclic and reaches the root from every node."""
        if self.root in self.parent:
            raise TopologyError(f"root {self.root} must not have a parent")
        for node in self.parent:
            seen = {node}
            current = node
            steps = 0
            while current != self.root:
                if current not in self.parent:
                    raise TopologyError(f"node {current} has no path to the root")
                current = self.parent[current]
                if current in seen:
                    raise TopologyError(f"cycle detected through node {current}")
                seen.add(current)
                steps += 1
                if steps > len(self.parent) + 1:
                    raise TopologyError("parent map does not terminate at the root")

    # -- basic accessors ---------------------------------------------------
    @property
    def nodes(self) -> list[int]:
        """All nodes of the tree (root first, then sorted non-root nodes)."""
        return [self.root, *sorted(self.parent.keys())]

    @property
    def size(self) -> int:
        """Number of nodes in the tree."""
        return len(self.parent) + 1

    def children(self) -> dict[int, list[int]]:
        """Inverse of the parent map: node → sorted list of children."""
        result: dict[int, list[int]] = {node: [] for node in self.nodes}
        for child, parent in self.parent.items():
            result[parent].append(child)
        for children in result.values():
            children.sort()
        return result

    def depth_of(self, node: int) -> int:
        """Distance (in tree edges) from ``node`` to the root."""
        depth = 0
        current = node
        while current != self.root:
            try:
                current = self.parent[current]
            except KeyError:
                raise TopologyError(f"node {node} is not part of the tree") from None
            depth += 1
        return depth

    @property
    def depth(self) -> int:
        """Maximum depth over all nodes (``l_max`` in the paper)."""
        return max((self.depth_of(node) for node in self.parent), default=0)

    @property
    def tree_diameter(self) -> int:
        """Diameter of the tree viewed as an undirected graph (``d(S)``)."""
        if self.size == 1:
            return 0
        return int(nx.diameter(self.as_graph()))

    def path_to_root(self, node: int) -> list[int]:
        """The node sequence from ``node`` up to (and including) the root."""
        path = [node]
        while path[-1] != self.root:
            path.append(self.parent[path[-1]])
        return path

    def as_graph(self) -> nx.Graph:
        """The tree as an undirected :class:`networkx.Graph`."""
        graph = nx.Graph()
        graph.add_nodes_from(self.nodes)
        graph.add_edges_from((child, parent) for child, parent in self.parent.items())
        return graph

    def spans(self, graph: nx.Graph) -> bool:
        """``True`` if the tree covers every node of ``graph`` and uses only its edges."""
        if set(self.nodes) != set(graph.nodes()):
            return False
        return all(graph.has_edge(child, parent) for child, parent in self.parent.items())

    def __repr__(self) -> str:
        return f"SpanningTree(root={self.root}, size={self.size}, depth={self.depth})"


def bfs_spanning_tree(graph: nx.Graph, root: int) -> SpanningTree:
    """Breadth-first-search shortest-path spanning tree rooted at ``root``.

    This is the tree used by the proof of Theorem 1; its depth is at most the
    graph diameter ``D``.
    """
    if root not in graph:
        raise TopologyError(f"root {root} is not a node of the graph")
    if not nx.is_connected(graph):
        raise TopologyError("cannot build a spanning tree of a disconnected graph")
    parent: dict[int, int] = {}
    visited = {root}
    queue = deque([root])
    while queue:
        node = queue.popleft()
        for neighbor in sorted(graph.neighbors(node)):
            if neighbor in visited:
                continue
            visited.add(neighbor)
            parent[neighbor] = node
            queue.append(neighbor)
    return SpanningTree(root=root, parent=parent)


def random_spanning_tree(graph: nx.Graph, root: int, rng) -> SpanningTree:
    """A uniformly random-ish spanning tree built by a randomised BFS/DFS hybrid.

    Used by tests and ablations to exercise TAG with trees that are *not*
    shortest-path trees (their depth can exceed the graph diameter).
    """
    if root not in graph:
        raise TopologyError(f"root {root} is not a node of the graph")
    if not nx.is_connected(graph):
        raise TopologyError("cannot build a spanning tree of a disconnected graph")
    parent: dict[int, int] = {}
    visited = {root}
    frontier = [root]
    while frontier:
        index = int(rng.integers(0, len(frontier)))
        node = frontier[index]
        unvisited = [v for v in graph.neighbors(node) if v not in visited]
        if not unvisited:
            frontier.pop(index)
            continue
        chosen = unvisited[int(rng.integers(0, len(unvisited)))]
        visited.add(chosen)
        parent[chosen] = node
        frontier.append(chosen)
    return SpanningTree(root=root, parent=parent)
