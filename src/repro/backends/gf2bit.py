"""Bit-packed word-parallel GF(2) kernels (the ``gf2bit`` backend).

Over ``GF(2)`` a row of ``c`` field elements is just ``c`` bits, so this
backend packs every stored row into ``ceil(c / 64)`` ``uint64`` words
(column ``j`` is bit ``j % 64`` of word ``j // 64``) and replaces the dense
field arithmetic of the numpy backend with machine-word operations, in the
style of the M4RI family of GF(2) libraries:

* **elimination** — subtracting a pivot row is one XOR per word instead of a
  masked modular multiply-subtract over ``c`` bytes (the numpy
  :class:`~repro.gf.field.PrimeField` path widens to int64 on top);
* **pivot normalisation** — a GF(2) pivot is always 1, so the whole
  normalisation step disappears;
* **pivot search** — the first non-zero column of a reduced row is the
  lowest set bit of its first non-zero word, found with an isolate-and-log2
  trick on whole batches at once;
* **encoding** — a random linear combination is the XOR-reduction of the
  packed basis rows selected by the 0/1 coefficients.

Everything is **bit-identical** to the numpy backend by construction: both
maintain the canonical RREF basis, and the RREF of a subspace is unique.
``tests/test_backend_conformance.py`` asserts this on seeded random traces,
whole registry scenarios and hypothesis-generated matrices.

Any field other than ``GF(2)`` is rejected with a typed
:class:`~repro.errors.BackendError` — never a silent fallback — so a run
that names this backend either computes with packed words or fails loudly.
"""

from __future__ import annotations

import numpy as np

from ..errors import BackendError, FieldError
from ..gf.field import GaloisField
from .base import ComputeBackend, EliminatorState

__all__ = ["Gf2BitBackend", "PackedGf2Eliminator"]

_WORD_BITS = 64
_BYTE_SHIFTS = (np.arange(8, dtype=np.uint64) * np.uint64(8))
_ONE = np.uint64(1)


def _require_gf2(field: GaloisField) -> None:
    """The no-silent-fallback guard: anything but GF(2) is a typed error."""
    if field.order != 2:
        raise BackendError(
            f"the gf2bit backend only supports GF(2), got GF({field.order}); "
            "choose the numpy backend for other fields"
        )


def _pack_rows(rows: np.ndarray, words: int) -> np.ndarray:
    """Pack ``(m, c)`` 0/1 rows into ``(m, words)`` little-bit-endian uint64."""
    m = rows.shape[0]
    bits = np.packbits(rows, axis=1, bitorder="little")  # (m, ceil(c/8)) bytes
    padded = np.zeros((m, words * 8), dtype=np.uint8)
    padded[:, : bits.shape[1]] = bits
    grouped = padded.reshape(m, words, 8).astype(np.uint64)
    return np.bitwise_or.reduce(grouped << _BYTE_SHIFTS, axis=2)


def _unpack_rows(packed: np.ndarray, columns: int, dtype) -> np.ndarray:
    """Inverse of :func:`_pack_rows` for any ``(..., words)`` array."""
    if packed.size == 0:
        return np.zeros((*packed.shape[:-1], columns), dtype=dtype)
    grouped = ((packed[..., np.newaxis] >> _BYTE_SHIFTS) & np.uint64(0xFF)).astype(
        np.uint8
    )
    flat = grouped.reshape(*packed.shape[:-1], -1)
    bits = np.unpackbits(flat, axis=-1, bitorder="little")
    return bits[..., :columns].astype(dtype)


def _lowest_set_bit(masked: np.ndarray) -> np.ndarray:
    """Global bit index of the lowest set bit of each ``(m, words)`` row.

    Rows must be non-zero.  Isolates the lowest bit of the first non-zero
    word with ``v & (~v + 1)`` and recovers its position through an exact
    ``log2`` (powers of two up to ``2**63`` are exact in float64).
    """
    first_word = np.argmax(masked != 0, axis=1).astype(np.int64)
    vals = np.take_along_axis(masked, first_word[:, np.newaxis], axis=1)[:, 0]
    lowest = vals & (~vals + _ONE)
    bit = np.rint(np.log2(lowest.astype(np.float64))).astype(np.int64)
    return first_word * _WORD_BITS + bit


class PackedGf2Eliminator(EliminatorState):
    """Word-parallel incremental GF(2) elimination over stacked problems.

    The packed twin of :class:`~repro.gf.linalg.BatchEliminator`: identical
    constructor signature, identical validation, identical canonical-RREF
    state — but ``rows[b, p]`` is a ``(words,)`` uint64 view of the stored
    row and every sweep is XOR arithmetic.  :meth:`basis` and :meth:`combine`
    unpack back to dense field elements on demand, so callers never see the
    packed representation.
    """

    def __init__(
        self,
        field: GaloisField,
        batch: int,
        columns: int,
        *,
        augmented_columns: int = 0,
    ) -> None:
        _require_gf2(field)
        if batch < 1:
            raise FieldError(f"batch size must be positive, got {batch}")
        if columns < 1:
            raise FieldError(f"column count must be positive, got {columns}")
        if not 0 <= augmented_columns < columns:
            raise FieldError(
                f"augmented_columns must lie in [0, {columns}), "
                f"got {augmented_columns}"
            )
        self.field = field
        self.batch = batch
        self.columns = columns
        self.pivot_limit = columns - augmented_columns
        self.words = (columns + _WORD_BITS - 1) // _WORD_BITS
        #: Packed stored rows, keyed by pivot column as in BatchEliminator.
        self.rows = np.zeros((batch, self.pivot_limit, self.words), dtype=np.uint64)
        self.pivot_mask = np.zeros((batch, self.pivot_limit), dtype=bool)
        self.ranks = np.zeros(batch, dtype=np.int64)
        # Word mask selecting the pivot-eligible bits (augmented bits never
        # decide helpfulness or pivots).
        pivot_words = np.zeros(self.words, dtype=np.uint64)
        for word in range(self.words):
            low = word * _WORD_BITS
            high = min(low + _WORD_BITS, self.pivot_limit)
            if high <= low:
                continue
            count = high - low
            if count == _WORD_BITS:
                pivot_words[word] = np.uint64(0xFFFFFFFFFFFFFFFF)
            else:
                pivot_words[word] = (_ONE << np.uint64(count)) - _ONE
        self._pivot_words = pivot_words
        # Pivot-eligible bits of a whole packed row, as one arbitrary-precision
        # python int (the single-delivery fast path works in int space).
        self._eligible_int = (1 << self.pivot_limit) - 1
        # Lazy per-problem pivot bitmask (int per problem), materialised by the
        # first combine_one/eliminate_one call and kept in sync by every state
        # mutation (eliminate, eliminate_one, reset_problems).
        self._pivot_bits: "list[int] | None" = None

    def _ensure_pivot_bits(self) -> "list[int]":
        if self._pivot_bits is None:
            packed_mask = np.packbits(self.pivot_mask, axis=1, bitorder="little")
            self._pivot_bits = [
                int.from_bytes(row.tobytes(), "little") for row in packed_mask
            ]
        return self._pivot_bits

    def eliminate(
        self, incoming: np.ndarray, indices: "np.ndarray | None" = None
    ) -> np.ndarray:
        """Absorb one row per selected problem; return the helpfulness mask.

        Same contract (and validation) as
        :meth:`repro.gf.linalg.BatchEliminator.eliminate`; the arithmetic is
        one XOR per 64 columns instead of a dense field sweep.
        """
        work = np.ascontiguousarray(incoming, dtype=self.field.dtype)
        if work.ndim != 2 or work.shape[1] != self.columns:
            raise FieldError(
                f"expected incoming rows of shape (m, {self.columns}), got {work.shape}"
            )
        if indices is None:
            indices = np.arange(work.shape[0])
        else:
            indices = np.asarray(indices, dtype=np.int64)
            if indices.shape != (work.shape[0],):
                raise FieldError(
                    f"indices shape {indices.shape} does not match {work.shape[0]} rows"
                )
            if indices.size > 1 and np.unique(indices).size != indices.size:
                raise FieldError(
                    "eliminate requires distinct problem indices "
                    "(one row per problem per sweep)"
                )
        packed = _pack_rows(work, self.words)
        # Forward sweep over the stored pivot columns: testing bit ``col`` of
        # every incoming row and XOR-ing the matching packed pivot rows in.
        selected_mask = self.pivot_mask[indices]
        for col in np.nonzero(selected_mask.any(axis=0))[0]:
            word, bit = divmod(int(col), _WORD_BITS)
            has_bit = (packed[:, word] >> np.uint64(bit)) & _ONE
            live = selected_mask[:, col] & has_bit.astype(bool)
            if not live.any():
                continue
            sel = np.nonzero(live)[0]
            packed[sel] ^= self.rows[indices[sel], col]
        masked = packed & self._pivot_words[np.newaxis, :]
        helpful = masked.any(axis=1)
        sel = np.nonzero(helpful)[0]
        if sel.size:
            # The new pivot is the lowest surviving pivot-eligible bit; a
            # GF(2) pivot is already 1, so there is nothing to normalise.
            new_pivots = _lowest_set_bit(masked[sel])
            problems = indices[sel]
            stored = self.rows[problems]
            word_idx = (new_pivots // _WORD_BITS).astype(np.int64)
            bit_idx = (new_pivots % _WORD_BITS).astype(np.uint64)
            pivot_col_words = np.take_along_axis(
                stored, word_idx[:, np.newaxis, np.newaxis], axis=2
            )[:, :, 0]
            factors = (pivot_col_words >> bit_idx[:, np.newaxis]) & _ONE
            # Back-substitute: XOR the new row into every stored row holding
            # the new pivot bit (0/1 factors make the multiply a select).
            self.rows[problems] = stored ^ (
                factors[:, :, np.newaxis] * packed[sel][:, np.newaxis, :]
            )
            self.rows[problems, new_pivots] = packed[sel]
            self.pivot_mask[problems, new_pivots] = True
            self.ranks[problems] += 1
            if self._pivot_bits is not None:
                for problem, pivot in zip(problems.tolist(), new_pivots.tolist()):
                    self._pivot_bits[problem] |= 1 << pivot
        return helpful

    def rank_of(self, index: int) -> int:
        """Current rank of one problem."""
        return int(self.ranks[index])

    def basis(self, index: int) -> np.ndarray:
        """Stored RREF rows of one problem, pivot order, unpacked (a copy)."""
        pivots = np.nonzero(self.pivot_mask[index])[0]
        return _unpack_rows(self.rows[index, pivots], self.columns, self.field.dtype)

    def combine(self, index: int, coefficients: np.ndarray) -> np.ndarray:
        """Linear combination of one problem's stored rows (the encode step)."""
        pivots = np.nonzero(self.pivot_mask[index])[0]
        coefficients = np.asarray(coefficients)
        if coefficients.shape != pivots.shape:
            raise FieldError(
                f"expected {pivots.size} coefficients for problem {index}, "
                f"got {coefficients.shape}"
            )
        if pivots.size == 0:
            return self.field.zeros(self.columns)
        selected = self.rows[index, pivots] * coefficients.astype(np.uint64)[
            :, np.newaxis
        ]
        return _unpack_rows(
            np.bitwise_xor.reduce(selected, axis=0), self.columns, self.field.dtype
        )

    def combine_one(self, index: int, coefficients: np.ndarray) -> int:
        """Encode step for one problem, returned as one packed python int.

        The packed twin of :meth:`combine`: same coefficient-per-pivot
        semantics (ascending pivot order), but the XOR-reduction runs on
        arbitrary-precision ints and the dense unpack is skipped entirely.
        The payload is only meaningful to :meth:`eliminate_one` on this
        eliminator.
        """
        index = int(index)
        coefficients = np.asarray(coefficients)
        rank = int(self.ranks[index])
        if coefficients.shape != (rank,):
            raise FieldError(
                f"expected {rank} coefficients for problem {index}, "
                f"got {coefficients.shape}"
            )
        bits = self._ensure_pivot_bits()[index]
        rows = self.rows[index]
        acc = 0
        for coefficient in coefficients.tolist():
            col = (bits & -bits).bit_length() - 1
            if coefficient:
                acc ^= int.from_bytes(rows[col].tobytes(), "little")
            bits &= bits - 1
        return acc

    def eliminate_one(self, index: int, payload: int) -> bool:
        """Absorb one packed-int payload into one problem.

        Bit-identical to a single-row :meth:`eliminate` call on the unpacked
        payload, but every sweep is python-int bit arithmetic — no array
        packing, no per-column numpy dispatch.  This is what keeps the
        event-driven engine's per-delivery cost in the microsecond range.
        """
        index = int(index)
        pivot_bits = self._ensure_pivot_bits()
        bits = pivot_bits[index]
        rows = self.rows[index]
        eligible = self._eligible_int
        # Forward sweep in ascending column order.  A stored RREF row's
        # lowest set bit is its pivot, so XOR-ing it in clears exactly bit
        # ``col`` and only ever flips higher bits — one left-to-right pass
        # visits every column once.
        x = int(payload)
        new_pivot = -1
        remaining = x & eligible
        while remaining:
            col = (remaining & -remaining).bit_length() - 1
            if (bits >> col) & 1:
                x ^= int.from_bytes(rows[col].tobytes(), "little")
                remaining = x & eligible & (-1 << (col + 1))
            else:
                if new_pivot < 0:
                    new_pivot = col
                remaining &= remaining - 1
        if new_pivot < 0:
            return False
        # Back-substitute: XOR the reduced row into every stored row holding
        # the new pivot bit, then store it keyed by its pivot column.
        nbytes = self.words * 8
        pivot_bit = 1 << new_pivot
        scan = bits
        while scan:
            col = (scan & -scan).bit_length() - 1
            scan &= scan - 1
            stored = int.from_bytes(rows[col].tobytes(), "little")
            if stored & pivot_bit:
                rows[col] = np.frombuffer(
                    (stored ^ x).to_bytes(nbytes, "little"), dtype=np.uint64
                )
        rows[new_pivot] = np.frombuffer(x.to_bytes(nbytes, "little"), dtype=np.uint64)
        self.pivot_mask[index, new_pivot] = True
        self.ranks[index] += 1
        pivot_bits[index] = bits | pivot_bit
        return True

    def reset_problems(self, indices: np.ndarray) -> None:
        """Wipe the selected problems back to the empty (rank-zero) state.

        Same contract as
        :meth:`repro.gf.linalg.BatchEliminator.reset_problems` — the cleared
        problems behave exactly like freshly constructed ones.
        """
        indices = np.asarray(indices, dtype=np.int64)
        self.rows[indices] = 0
        self.pivot_mask[indices] = False
        self.ranks[indices] = 0
        if self._pivot_bits is not None:
            for index in indices.tolist():
                self._pivot_bits[index] = 0


class Gf2BitBackend(ComputeBackend):
    """Bit-packed GF(2) linear algebra; rejects every other field loudly."""

    name = "gf2bit"

    def supports_field(self, field: GaloisField) -> bool:
        return field.order == 2

    def row_reduce(
        self, field: GaloisField, matrix: np.ndarray, *, augmented_columns: int = 0
    ) -> "tuple[np.ndarray, list[int]]":
        _require_gf2(field)
        work = field.validate(matrix).copy()
        if work.ndim != 2:
            raise FieldError(f"row_reduce expects a 2-D matrix, got shape {work.shape}")
        rows, cols = work.shape
        pivot_limit = cols - augmented_columns
        if pivot_limit < 0:
            raise FieldError(
                f"augmented_columns={augmented_columns} exceeds column count {cols}"
            )
        if rows == 0 or cols == 0 or pivot_limit == 0:
            return work, []
        words = (cols + _WORD_BITS - 1) // _WORD_BITS
        packed = _pack_rows(work, words)
        pivot_columns = self._packed_rref(packed, pivot_limit)
        return _unpack_rows(packed, cols, field.dtype), pivot_columns

    @staticmethod
    def _packed_rref(packed: np.ndarray, pivot_limit: int) -> "list[int]":
        """In-place packed RREF; mirrors the reference sweep swap-for-swap.

        Dependent rows (zero in the pivot-eligible columns) keep exactly the
        residuals — and the row order — the dense reference produces, so the
        unpacked output is byte-identical to the numpy backend's.
        """
        rows = packed.shape[0]
        pivot_columns: "list[int]" = []
        pivot_row = 0
        for col in range(pivot_limit):
            if pivot_row >= rows:
                break
            word, bit = divmod(col, _WORD_BITS)
            column_bits = (packed[pivot_row:, word] >> np.uint64(bit)) & _ONE
            candidates = np.nonzero(column_bits)[0]
            if candidates.size == 0:
                continue
            source = pivot_row + int(candidates[0])
            if source != pivot_row:
                packed[[pivot_row, source]] = packed[[source, pivot_row]]
            # Eliminate the pivot bit from every other row in one XOR pass.
            has_bit = ((packed[:, word] >> np.uint64(bit)) & _ONE).astype(bool)
            has_bit[pivot_row] = False
            sel = np.nonzero(has_bit)[0]
            if sel.size:
                packed[sel] ^= packed[pivot_row]
            pivot_columns.append(col)
            pivot_row += 1
        return pivot_columns

    def rank(self, field: GaloisField, matrix: np.ndarray) -> int:
        _require_gf2(field)
        matrix = field.validate(matrix)
        if matrix.size == 0:
            return 0
        words = (matrix.shape[1] + _WORD_BITS - 1) // _WORD_BITS
        packed = _pack_rows(matrix, words)
        return len(self._packed_rref(packed, matrix.shape[1]))

    def is_in_row_space(
        self, field: GaloisField, matrix: np.ndarray, vector: np.ndarray
    ) -> bool:
        _require_gf2(field)
        matrix = field.validate(matrix)
        vector = field.validate(vector)
        if matrix.size == 0:
            return not np.any(vector)
        if vector.ndim != 1 or vector.shape[0] != matrix.shape[1]:
            raise FieldError(
                f"vector of length {vector.shape} does not match matrix with "
                f"{matrix.shape[1]} columns"
            )
        eliminator = PackedGf2Eliminator(field, 1, matrix.shape[1])
        target = np.zeros(1, dtype=np.int64)
        for row in matrix:
            eliminator.eliminate(row[np.newaxis, :], target)
        # Helpful ⇔ the vector increases the rank ⇔ it is NOT in the span.
        return not bool(eliminator.eliminate(vector[np.newaxis, :], target)[0])

    def make_eliminator(
        self,
        field: GaloisField,
        batch: int,
        columns: int,
        *,
        augmented_columns: int = 0,
    ) -> EliminatorState:
        _require_gf2(field)
        return PackedGf2Eliminator(
            field, batch, columns, augmented_columns=augmented_columns
        )
