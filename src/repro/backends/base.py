"""Abstract interfaces of the pluggable linear-algebra compute backends.

A :class:`ComputeBackend` owns every array-touching operation of the RLNC
stack — Gaussian elimination, rank computation, row-space membership (the
helpfulness test of Definition 3) and the incremental batched eliminator the
decoders are built on.  The simulation layers (:mod:`repro.gf.linalg`,
:mod:`repro.rlnc`, the batch engines) only ever talk to these interfaces, so
swapping the arithmetic kernel (dense numpy, bit-packed GF(2) words, a future
numba/cupy kernel) never touches protocol code.

The contract every backend must honour is **bit-identical results**: for any
field it supports, every operation returns exactly what the reference numpy
implementation returns — same RREF rows, same pivot choices, same helpfulness
flags.  This is what keeps the ResultStore backend-invariant and is enforced
by ``tests/test_backend_conformance.py``, which runs every registered backend
through the same seeded matrix of elimination, decoder and whole-scenario
equivalence checks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..gf.field import GaloisField

__all__ = ["ComputeBackend", "EliminatorState"]


class EliminatorState(ABC):
    """Incremental Gaussian-elimination state over many independent problems.

    One instance carries the canonical reduced-row-echelon basis of ``batch``
    independent row spaces over ``columns``-wide rows.  With
    ``augmented_columns = r > 0`` the trailing ``r`` columns are carried along
    through every row operation but are never eligible as pivots and never
    count towards helpfulness — the ``[coefficients | payload]`` layout of the
    scalar RLNC decoder.

    Because the RREF basis of a subspace is unique, any two conforming
    implementations hold identical state after identical inputs; that is the
    invariant the batch fast paths (and the cross-backend result cache) rest
    on.

    Attributes
    ----------
    ranks:
        ``(batch,)`` int64 array — current rank of every problem (live view).
    pivot_mask:
        ``(batch, pivot_limit)`` boolean array — which pivot columns each
        problem has filled (``pivot_limit = columns - augmented_columns``).
    """

    field: GaloisField
    batch: int
    columns: int
    ranks: np.ndarray
    pivot_mask: np.ndarray

    @abstractmethod
    def eliminate(
        self, incoming: np.ndarray, indices: "np.ndarray | None" = None
    ) -> np.ndarray:
        """Absorb one row per selected problem; return the helpfulness mask.

        ``incoming`` is ``(m, columns)``; row ``j`` is reduced into problem
        ``indices[j]`` (default ``0 .. m-1``; indices must be distinct).
        Returns a boolean ``(m,)`` mask, ``True`` where the row increased its
        problem's rank.  Rows whose pivot-eligible part reduces to zero are
        counted unhelpful and **not** stored, even if their augmented part is
        non-zero — exactly the scalar decoder's semantics.
        """

    @abstractmethod
    def rank_of(self, index: int) -> int:
        """Current rank of one problem."""

    @abstractmethod
    def basis(self, index: int) -> np.ndarray:
        """Stored RREF rows of one problem in pivot order (a dense copy)."""

    @abstractmethod
    def combine(self, index: int, coefficients: np.ndarray) -> np.ndarray:
        """Linear combination of one problem's stored rows (the encode step).

        ``coefficients`` must have exactly ``rank_of(index)`` entries; the
        result is a dense ``(columns,)`` row of field elements.
        """

    def combine_one(self, index: int, coefficients: np.ndarray):
        """Encode step for one problem in the backend's *native* payload form.

        Semantically identical to :meth:`combine`, but the return value is an
        opaque payload understood only by :meth:`eliminate_one` on the same
        eliminator — a backend may hand back a packed representation so the
        event-driven engine's per-delivery cost stays flat instead of paying
        dense pack/unpack round-trips on every message.  The default simply
        returns the dense :meth:`combine` row.
        """
        return self.combine(index, coefficients)

    def eliminate_one(self, index: int, payload) -> bool:
        """Absorb one :meth:`combine_one` payload into one problem.

        Returns the helpfulness flag.  Must be bit-identical to a single-row
        :meth:`eliminate` call on the dense equivalent of ``payload`` — the
        packed fast paths change the representation, never the arithmetic.
        """
        row = np.asarray(payload)
        mask = self.eliminate(row[np.newaxis, :], np.array([index], dtype=np.int64))
        return bool(mask[0])

    def reset_problems(self, indices: np.ndarray) -> None:
        """Wipe the selected problems back to the empty (rank-zero) state.

        Used by the event-driven engine for reset-mode churn: a crashing
        node's problem is cleared and re-seeded with its initial knowledge.
        Both shipped eliminators implement it; the default refuses loudly so
        a backend that cannot reset never pretends to.
        """
        from ..errors import BackendError

        raise BackendError(
            f"{type(self).__name__} does not support resetting individual problems"
        )


class ComputeBackend(ABC):
    """One complete arithmetic kernel for finite-field linear algebra.

    Implementations are registered with
    :func:`repro.backends.register_backend` and selected per run through
    :func:`repro.backends.use_backend` (driven by ``ScenarioSpec.backend``,
    the CLI ``--backend`` flag or the ``REPRO_BACKEND`` environment default).

    A backend that does not support a field must raise
    :class:`~repro.errors.BackendError` from every operation handed that
    field — never fall back silently to different arithmetic.
    """

    #: Registry name (``"numpy"``, ``"gf2bit"``, ...).
    name: str = ""

    @abstractmethod
    def supports_field(self, field: GaloisField) -> bool:
        """Can this backend compute over ``field``?"""

    @abstractmethod
    def row_reduce(
        self, field: GaloisField, matrix: np.ndarray, *, augmented_columns: int = 0
    ) -> "tuple[np.ndarray, list[int]]":
        """Reduced row-echelon form and pivot columns of ``matrix``.

        Same contract as :func:`repro.gf.linalg.row_reduce`: the matrix is
        copied, trailing ``augmented_columns`` are carried but never pivoted.
        """

    @abstractmethod
    def rank(self, field: GaloisField, matrix: np.ndarray) -> int:
        """Rank of ``matrix`` over ``field``."""

    @abstractmethod
    def is_in_row_space(
        self, field: GaloisField, matrix: np.ndarray, vector: np.ndarray
    ) -> bool:
        """Is ``vector`` in the row space of ``matrix``? (helpfulness test)

        A received packet is *helpful* exactly when its coefficient vector is
        **not** already in the receiver's row space (Definition 3 of the
        paper).
        """

    @abstractmethod
    def make_eliminator(
        self,
        field: GaloisField,
        batch: int,
        columns: int,
        *,
        augmented_columns: int = 0,
    ) -> EliminatorState:
        """A fresh incremental eliminator for ``batch`` independent problems."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
