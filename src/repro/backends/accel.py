"""Optional numba-jitted hot loop for the event-driven engine.

The event engine's asynchronous inner path — clock draw, partner draw,
encode, eliminate — is a few microseconds of python per timeslot even with
the gf2bit packed rows.  At ``n = 10^6`` a run is ``Θ(n log n)`` timeslots,
so those microseconds are hours.  This module compiles that exact inner path
with `numba <https://numba.pydata.org>`_ when it is importable, operating
directly on the :class:`~repro.backends.gf2bit.PackedGf2Eliminator` word
arrays.

Bit-identical by contract, like the backend seam:

* numba's ``np.random.Generator`` support draws from the **same bit-generator
  stream** as numpy, and every draw below is issued in the scalar engine's
  exact order: wakeup ``integers(0, n)``, partner ``integers(0, degree)``,
  one ``integers(0, 2)`` per stored pivot in ascending column order (exactly
  the ``rng.integers(0, 2, size=rank, dtype=int64)`` batch
  :meth:`~repro.gf.field.GaloisField.random_elements` issues — numpy fills
  bounded-integer batches element-wise from the same masked 64-bit
  rejection), then the loss ``random()`` per surviving delivery;
* elimination works in word space with the same ascending-column sweeps as
  :meth:`~repro.backends.gf2bit.PackedGf2Eliminator.eliminate_one`, so the
  stored RREF state after every event is byte-identical.

``tests/test_event_kernel.py`` asserts the parity per seed when numba is
installed; when it is not (the baked container image does not ship it),
:func:`async_event_kernel` returns ``None`` and the engine runs the pure
python loop — no behaviour change, only wall-clock.  ``REPRO_EVENT_KERNEL=0``
(or ``off``/``false``) disables the kernel explicitly, e.g. to benchmark the
fallback.
"""

from __future__ import annotations

import os
from typing import Any, Callable

import numpy as np

from ..core.config import TimeModel

__all__ = ["numba_available", "async_event_kernel"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba
except ImportError:  # pragma: no cover
    numba = None

#: Lazily compiled kernel (one compilation per process).
_KERNEL: Callable | None = None

# Offsets into the kernel's int64 state vector (in/out).
_TIMESLOT, _FINISHED, _MESSAGES, _HELPFUL, _DROPPED, _ROUND, _COMPLETIONS = range(7)


def numba_available() -> bool:
    """Is the jitted event kernel usable in this process?

    Requires numba to be importable and the ``REPRO_EVENT_KERNEL``
    environment switch not to disable it.
    """
    if numba is None:
        return False
    return os.environ.get("REPRO_EVENT_KERNEL", "").lower() not in (
        "0",
        "off",
        "false",
    )


def _compile_kernel() -> Callable:
    """Compile (once per process) the asynchronous event loop."""
    global _KERNEL
    if _KERNEL is not None:
        return _KERNEL

    @numba.njit(cache=False)
    def _async_loop(  # pragma: no cover - runs only where numba is installed
        rng,
        rows,  # (n, k, words) uint64 — eliminator storage, keyed by pivot col
        pivot_mask,  # (n, k) bool
        ranks,  # (n,) int64
        noted,  # (n,) bool
        indptr,  # (n+1,) int64
        indices,  # (m,) int64
        state,  # (7,) int64 in/out: see offsets above
        completion_pos,  # (n,) int64 out: positions in completion order
        completion_round,  # (n,) int64 out: matching rounds
        n,
        k,
        words,
        max_timeslots,
        loss_probability,
        do_push,
        do_pull,
    ):
        timeslot = state[_TIMESLOT]
        finished = state[_FINISHED]
        messages_sent = state[_MESSAGES]
        helpful_messages = state[_HELPFUL]
        dropped = state[_DROPPED]
        round_index = state[_ROUND]
        completions = state[_COMPLETIONS]
        row_push = np.zeros(words, dtype=np.uint64)
        row_pull = np.zeros(words, dtype=np.uint64)
        reduced = np.zeros(words, dtype=np.uint64)
        while finished < n:
            if timeslot >= max_timeslots:
                break
            round_now = timeslot // n + 1
            pos = rng.integers(0, n)
            timeslot += 1
            round_index = round_now
            start = indptr[pos]
            degree = indptr[pos + 1] - start
            partner = indices[start + rng.integers(0, degree)]
            # Both packets are built before either is delivered, and the
            # coefficient draws pair with the stored pivots in ascending
            # column order — exactly combine_one's contract.
            has_push = False
            if do_push and ranks[pos] > 0:
                has_push = True
                for w in range(words):
                    row_push[w] = np.uint64(0)
                for col in range(k):
                    if pivot_mask[pos, col]:
                        if rng.integers(0, 2) != 0:
                            for w in range(words):
                                row_push[w] ^= rows[pos, col, w]
            has_pull = False
            if do_pull and ranks[partner] > 0:
                has_pull = True
                for w in range(words):
                    row_pull[w] = np.uint64(0)
                for col in range(k):
                    if pivot_mask[partner, col]:
                        if rng.integers(0, 2) != 0:
                            for w in range(words):
                                row_pull[w] ^= rows[partner, col, w]
            for leg in range(2):
                if leg == 0:
                    if not has_push:
                        continue
                    sender = pos
                    receiver = partner
                    payload = row_push
                else:
                    if not has_pull:
                        continue
                    sender = partner
                    receiver = pos
                    payload = row_pull
                messages_sent += 1
                if loss_probability > 0.0 and rng.random() < loss_probability:
                    dropped += 1
                    continue
                # eliminate_one in word space: one ascending-column sweep.  A
                # stored RREF row's lowest set bit is its pivot column, so
                # XOR-ing it in clears exactly that bit and only flips higher
                # ones; the first set bit with no stored pivot is the new
                # pivot, and the sweep continues past it untouched.
                for w in range(words):
                    reduced[w] = payload[w]
                new_pivot = -1
                for col in range(k):
                    if (reduced[col >> 6] >> np.uint64(col & 63)) & np.uint64(1):
                        if pivot_mask[receiver, col]:
                            for w in range(words):
                                reduced[w] ^= rows[receiver, col, w]
                        elif new_pivot < 0:
                            new_pivot = col
                if new_pivot < 0:
                    continue
                # Back-substitute into every stored row holding the new
                # pivot bit, then store the reduced row keyed by its pivot.
                pivot_word = new_pivot >> 6
                pivot_bit = np.uint64(new_pivot & 63)
                for col in range(k):
                    if pivot_mask[receiver, col] and (
                        (rows[receiver, col, pivot_word] >> pivot_bit)
                        & np.uint64(1)
                    ):
                        for w in range(words):
                            rows[receiver, col, w] ^= reduced[w]
                for w in range(words):
                    rows[receiver, new_pivot, w] = reduced[w]
                pivot_mask[receiver, new_pivot] = True
                ranks[receiver] += 1
                helpful_messages += 1
                if ranks[receiver] == k and not noted[receiver]:
                    noted[receiver] = True
                    completion_pos[completions] = receiver
                    completion_round[completions] = round_now
                    completions += 1
                    finished += 1
        state[_TIMESLOT] = timeslot
        state[_FINISHED] = finished
        state[_MESSAGES] = messages_sent
        state[_HELPFUL] = helpful_messages
        state[_DROPPED] = dropped
        state[_ROUND] = round_index
        state[_COMPLETIONS] = completions

    _KERNEL = _async_loop
    return _KERNEL


def async_event_kernel(engine: Any) -> Callable[[], int] | None:
    """A zero-argument replacement for the engine's asynchronous loop, or ``None``.

    ``None`` means "run the pure python loop": numba is unavailable (or
    disabled), or the workload uses a knob the kernel does not replay —
    churn / heterogeneous rates (the :class:`~repro.gossip.dynamics
    .NodeDynamics` fast path is the only clock the kernel implements) or a
    non-gf2bit eliminator.  The returned callable mutates the engine exactly
    as :meth:`~repro.gossip.event.EventGossipEngine._run_asynchronous` would
    and returns the final round index.
    """
    if not numba_available():
        return None
    if engine.config.time_model is not TimeModel.ASYNCHRONOUS:
        return None
    if engine._dynamics.active:
        return None
    from .gf2bit import PackedGf2Eliminator

    eliminator = engine._eliminator
    if not isinstance(eliminator, PackedGf2Eliminator):
        return None
    if eliminator.pivot_limit != engine._k:
        return None

    def run() -> int:
        from ..core.config import GossipAction

        kernel = _compile_kernel()
        n = engine._n
        state = np.zeros(7, dtype=np.int64)
        state[_TIMESLOT] = engine._timeslot
        state[_FINISHED] = engine._finished
        state[_MESSAGES] = engine._messages_sent
        state[_HELPFUL] = engine._helpful_messages
        state[_DROPPED] = engine._dropped_messages
        completion_pos = np.zeros(n, dtype=np.int64)
        completion_round = np.zeros(n, dtype=np.int64)
        action = engine.process.action
        kernel(
            engine.rng,
            eliminator.rows,
            eliminator.pivot_mask,
            eliminator.ranks,
            engine._noted,
            engine._indptr,
            engine._indices,
            state,
            completion_pos,
            completion_round,
            n,
            engine._k,
            eliminator.words,
            engine.config.max_rounds * n,
            float(engine._loss_probability),
            action in (GossipAction.PUSH, GossipAction.EXCHANGE),
            action in (GossipAction.PULL, GossipAction.EXCHANGE),
        )
        # The kernel mutated the packed arrays directly; the lazy python-int
        # pivot cache must be rebuilt on next use.
        eliminator._pivot_bits = None
        engine._timeslot = int(state[_TIMESLOT])
        engine._finished = int(state[_FINISHED])
        engine._messages_sent = int(state[_MESSAGES])
        engine._helpful_messages = int(state[_HELPFUL])
        engine._dropped_messages = int(state[_DROPPED])
        # Replay completions in event order so the dict's insertion order
        # matches the python loop's exactly.
        for i in range(int(state[_COMPLETIONS])):
            pos = int(completion_pos[i])
            engine._completion_rounds[engine._nodes[pos]] = int(completion_round[i])
        return int(state[_ROUND])

    return run
