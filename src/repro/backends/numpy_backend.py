"""The default dense-numpy compute backend.

A thin adapter over the reference implementations in :mod:`repro.gf.linalg`:
row reduction, rank and row-space membership call the ``_reference_*``
kernels directly (the public ``repro.gf.linalg`` entry points dispatch *to*
the active backend, so the adapter must not call them back), and the
eliminator is :class:`~repro.gf.linalg.BatchEliminator` itself.

Supports every field the library can construct; this is the backend every
other backend is conformance-tested against.
"""

from __future__ import annotations

import numpy as np

from ..gf.field import GaloisField
from ..gf.linalg import (
    BatchEliminator,
    _reference_is_in_row_space,
    _reference_rank,
    _reference_row_reduce,
)
from .base import ComputeBackend, EliminatorState

__all__ = ["NumpyBackend"]

# BatchEliminator predates the backend seam and is re-exported through
# ``repro.gf``; registering it as a virtual subclass keeps that public
# surface untouched while making isinstance(x, EliminatorState) hold.
EliminatorState.register(BatchEliminator)


class NumpyBackend(ComputeBackend):
    """Dense numpy Gaussian elimination over any supported ``GF(q)``."""

    name = "numpy"

    def supports_field(self, field: GaloisField) -> bool:
        return True

    def row_reduce(
        self, field: GaloisField, matrix: np.ndarray, *, augmented_columns: int = 0
    ) -> "tuple[np.ndarray, list[int]]":
        return _reference_row_reduce(
            field, matrix, augmented_columns=augmented_columns
        )

    def rank(self, field: GaloisField, matrix: np.ndarray) -> int:
        return _reference_rank(field, matrix)

    def is_in_row_space(
        self, field: GaloisField, matrix: np.ndarray, vector: np.ndarray
    ) -> bool:
        return _reference_is_in_row_space(field, matrix, vector)

    def make_eliminator(
        self,
        field: GaloisField,
        batch: int,
        columns: int,
        *,
        augmented_columns: int = 0,
    ) -> EliminatorState:
        return BatchEliminator(
            field, batch, columns, augmented_columns=augmented_columns
        )
