"""Pluggable linear-algebra compute backends for the RLNC stack.

Every array-touching operation of the decoders — Gaussian elimination, rank
updates, pivot search, the helpfulness test and their batched variants —
goes through one :class:`ComputeBackend`.  Two implementations ship:

* ``numpy`` (default) — the dense reference kernels in
  :mod:`repro.gf.linalg`, supporting every field;
* ``gf2bit`` — GF(2) rows packed into uint64 words with word-parallel XOR
  elimination and vectorised pivot scans (:mod:`repro.backends.gf2bit`);
  rejects any other field with a typed :class:`~repro.errors.BackendError`.

Selection is ambient, per run: :func:`use_backend` installs a backend for a
``with`` block (the trial runners wrap every simulation in it, driven by
``ScenarioSpec.backend`` / the CLI ``--backend`` flag), and the
``REPRO_BACKEND`` environment variable overrides the process-wide default.
Backends are **bit-identical by contract** — same seeds give the same
trial results on every backend, which is why
:meth:`~repro.scenarios.ScenarioSpec.fingerprint` excludes the backend
choice and the :class:`~repro.store.ResultStore` cache is backend-invariant.
``tests/test_backend_conformance.py`` enforces the contract for every
registered backend, so a future numba/cupy kernel plugs into the same suite.

>>> from repro.backends import all_backends, current_backend, use_backend
>>> sorted(all_backends())
['gf2bit', 'numpy']
>>> current_backend().name
'numpy'
>>> with use_backend("gf2bit"):
...     current_backend().name
'gf2bit'
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator

from ..errors import BackendError
from .base import ComputeBackend, EliminatorState
from .gf2bit import Gf2BitBackend, PackedGf2Eliminator
from .numpy_backend import NumpyBackend

__all__ = [
    "ComputeBackend",
    "EliminatorState",
    "NumpyBackend",
    "Gf2BitBackend",
    "PackedGf2Eliminator",
    "register_backend",
    "get_backend",
    "all_backends",
    "current_backend",
    "default_backend_name",
    "resolve_backend",
    "use_backend",
]

#: Environment variable naming the process-wide default backend.
BACKEND_ENV = "REPRO_BACKEND"

_REGISTRY: "dict[str, ComputeBackend]" = {}

#: Stack of ambient overrides installed by :func:`use_backend` (innermost last).
_ACTIVE: "list[str]" = []


def register_backend(backend: ComputeBackend) -> ComputeBackend:
    """Register a backend instance under its :attr:`~ComputeBackend.name`.

    Re-registering an existing name replaces it (useful for tests); the
    name must be non-empty.  Returns the backend for chaining.
    """
    if not backend.name:
        raise BackendError(f"{type(backend).__name__} has no registry name")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> ComputeBackend:
    """Look up a registered backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown compute backend {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def all_backends() -> "tuple[str, ...]":
    """Names of every registered backend, sorted (the conformance matrix)."""
    return tuple(sorted(_REGISTRY))


def default_backend_name() -> str:
    """The process default: ``$REPRO_BACKEND`` when set, else ``"numpy"``."""
    return os.environ.get(BACKEND_ENV, "").strip() or "numpy"


def current_backend() -> ComputeBackend:
    """The ambient backend: innermost :func:`use_backend`, else the default."""
    return get_backend(_ACTIVE[-1] if _ACTIVE else default_backend_name())


def resolve_backend(backend: "ComputeBackend | str | None" = None) -> ComputeBackend:
    """Normalise a backend argument: instance, name, or ``None`` (ambient).

    The constructor-side convention of the decoders: an explicit backend (or
    name) wins, ``None``/empty falls through to :func:`current_backend`.
    """
    if backend is None or backend == "":
        return current_backend()
    if isinstance(backend, ComputeBackend):
        return backend
    return get_backend(backend)


@contextlib.contextmanager
def use_backend(name: "str | None") -> Iterator[ComputeBackend]:
    """Install a backend as the ambient default for the enclosed block.

    A falsy ``name`` is a no-op passthrough (the ambient backend stays
    whatever it already was) so callers can wrap unconditionally::

        with use_backend(spec.backend):   # "" on an unpinned spec
            ...run trials...

    Unknown names raise :class:`~repro.errors.BackendError` on entry.
    """
    if not name:
        yield current_backend()
        return
    backend = get_backend(name)  # fail fast, before entering the block
    _ACTIVE.append(name)
    try:
        yield backend
    finally:
        _ACTIVE.pop()


register_backend(NumpyBackend())
register_backend(Gf2BitBackend())
