"""Node churn and heterogeneous activation: the dynamic-network knobs.

The paper analyses a static network with uniform node clocks.  Two extension
axes relax that:

* **Churn** — a crash/restart schedule (:attr:`SimulationConfig.churn
  <repro.core.config.SimulationConfig.churn>`): while a node is down it never
  wakes up and every transmission it would send or receive is dropped before
  delivery.  By default a node keeps its protocol state across a crash
  ("pause" semantics); with ``churn_reset`` the engine additionally calls
  :meth:`~repro.gossip.engine.GossipProcess.on_crash` so the protocol can
  wipe the node back to its initial knowledge.
* **Heterogeneous activation rates** — non-uniform node clocks in the
  asynchronous time model (:attr:`SimulationConfig.activation_rates
  <repro.core.config.SimulationConfig.activation_rates>`): each timeslot
  activates node ``i`` with probability proportional to its rate, restricted
  to currently-alive nodes.

:class:`NodeDynamics` is the single implementation of both, shared **by
value** between the sequential :class:`~repro.gossip.engine.GossipEngine`
and the lockstep batch engines: both call exactly the same methods with
exactly the same generators, which is what keeps the batch fast path
bit-identical under the new knobs.  The uniform, churn-free case keeps the
historical ``rng.integers(0, n)`` draw so that existing seeded results are
unchanged.
"""

from __future__ import annotations

import numpy as np

from ..core.config import SimulationConfig
from ..errors import SimulationError

__all__ = ["NodeDynamics"]


class NodeDynamics:
    """Per-run churn schedule and activation weights in node-*position* space.

    Positions index ``sorted(graph.nodes())``, matching both engines'
    internal ordering.  Every query is a pure function of the round index
    (the only internal state is a memo cache), so one instance can serve
    every trial of a batch engine.
    """

    def __init__(self, config: SimulationConfig, nodes: list[int]) -> None:
        self._nodes = nodes
        self._n = len(nodes)
        self._crash_rounds: dict[int, list[int]] = {}
        if config.churn:
            # The position dict and per-position interval lists are O(n); they
            # exist only when a churn schedule actually references them.
            pos = {node: index for index, node in enumerate(nodes)}
            self._down_at: list[list[tuple[int, int]]] = [
                [] for _ in range(self._n)
            ]
            for node, down_round, up_round in config.churn:
                if node not in pos:
                    raise SimulationError(
                        f"churn schedule references unknown node {node}"
                    )
                position = pos[node]
                self._down_at[position].append((down_round, up_round))
                self._crash_rounds.setdefault(down_round, []).append(position)
            for crashes in self._crash_rounds.values():
                crashes.sort()
        else:
            self._down_at = []
        self.has_churn = bool(config.churn)
        self.reset_on_crash = config.churn_reset
        # Churn is typically a few bounded windows in a long run: outside
        # [first_down, last_up) nobody is down and down_mask returns one
        # shared all-False array (callers only read masks, never write).
        self._first_down = min((down for _, down, _ in config.churn), default=0)
        self._last_up = max((up for _, _, up in config.churn), default=0)
        self._zero_mask = np.zeros(self._n, dtype=bool)
        self._zero_mask.setflags(write=False)
        # Single-entry memos: engines ask for the same round's mask (and the
        # derived alive set / cumulative weights) once per timeslot — n times
        # per round, times T lockstep trials — so caching the last round
        # keeps the per-slot cost O(1) inside churn windows.
        self._mask_cache: tuple[int, np.ndarray] | None = None
        self._alive_cache: tuple[int, np.ndarray, np.ndarray | None] | None = None
        self.rates = np.asarray(config.activation_rates, dtype=float)
        self.has_rates = self.rates.size > 0
        if self.has_rates and self.rates.size != self._n:
            raise SimulationError(
                f"activation_rates has {self.rates.size} entries but the "
                f"graph has {self._n} nodes"
            )
        #: ``True`` when either knob is active (set before the hot-path
        #: constants below, which only the active paths ever read).
        active = self.has_churn or self.has_rates
        # Hot-path constants for the everyone-alive case of choose_wakeup.
        self._all_positions = np.arange(self._n) if active else None
        self._cum_rates = np.cumsum(self.rates) if self.has_rates else None
        #: ``True`` when either knob is active (the engines skip all dynamic
        #: bookkeeping otherwise, preserving the historical fast path).
        self.active = active

    # ------------------------------------------------------------------
    # Churn queries
    # ------------------------------------------------------------------
    def is_down(self, position: int, round_index: int) -> bool:
        """Is the node at ``position`` down during ``round_index``?"""
        if not self.has_churn:
            return False
        return any(
            down <= round_index < up for down, up in self._down_at[position]
        )

    def down_mask(self, round_index: int) -> np.ndarray:
        """Boolean ``(n,)`` mask of down positions during ``round_index``.

        The returned array may be a shared read-only constant; callers must
        treat it as immutable.
        """
        if not self.has_churn or not self._first_down <= round_index < self._last_up:
            return self._zero_mask
        if self._mask_cache is not None and self._mask_cache[0] == round_index:
            return self._mask_cache[1]
        mask = np.zeros(self._n, dtype=bool)
        for position in range(self._n):
            if self.is_down(position, round_index):
                mask[position] = True
        mask.setflags(write=False)
        self._mask_cache = (round_index, mask)
        return mask

    def crashes_at(self, round_index: int) -> list[int]:
        """Positions whose crash (down interval) *starts* at ``round_index``."""
        return self._crash_rounds.get(round_index, [])

    # ------------------------------------------------------------------
    # Asynchronous activation
    # ------------------------------------------------------------------
    def choose_wakeup(
        self,
        rng: np.random.Generator,
        round_index: int,
        down: np.ndarray | None = None,
    ) -> int | None:
        """Draw the waking node position for one asynchronous timeslot.

        ``None`` means no node can wake this slot (everything is down).  The
        uniform churn-free case issues the same single ``rng.integers(0, n)``
        draw the engine always has, so pre-existing seeded runs reproduce.
        Churn restricts the draw to alive positions; heterogeneous rates turn
        it into one ``rng.random()`` draw against the cumulative alive
        weights.  Both engines call this same method per trial, which is what
        keeps the batch path bit-identical.

        Callers that already hold this round's :meth:`down_mask` pass it as
        ``down`` so the slot pays for the mask only once.
        """
        if not self.active:
            return int(rng.integers(0, self._n))
        if self.has_churn:
            if down is None:
                down = self.down_mask(round_index)
            somebody_down = bool(down.any())
        else:
            somebody_down = False
        if somebody_down:
            if self._alive_cache is not None and self._alive_cache[0] == round_index:
                _, alive, cumulative = self._alive_cache
            else:
                alive = np.nonzero(~down)[0]
                cumulative = (
                    np.cumsum(self.rates[alive]) if self.has_rates else None
                )
                self._alive_cache = (round_index, alive, cumulative)
        else:
            # Everyone alive: the alive set and cumulative weights are the
            # run-invariant constants precomputed at construction, and the
            # draws below are identical to the general path's.
            alive = self._all_positions
            cumulative = self._cum_rates
        if alive.size == 0:
            return None
        if not self.has_rates:
            return int(alive[int(rng.integers(0, alive.size))])
        draw = rng.random() * cumulative[-1]
        return int(alive[int(np.searchsorted(cumulative, draw, side="right").clip(max=alive.size - 1))])
