"""The event-driven sparse engine: algebraic gossip at large ``n``.

Both existing engine families are *dense in nodes*: the scalar
:class:`~repro.gossip.engine.GossipEngine` re-scans every node's decoder to
answer ``is_complete()`` / ``finished_nodes()`` after every timeslot, and the
lockstep :class:`~repro.gossip.batch.BatchEngineCore` family sweeps full
``trials × n`` grids per tick.  Both are excellent at ``n ≤ a few hundred``
and hopeless at ``n = 10^5`` — which is exactly where the paper's asymptotic
claims (``Θ(n log n)`` for uniform algebraic gossip, ``O(n)`` for TAG) live.

:class:`EventGossipEngine` runs **one trial** with per-event O(1)
bookkeeping:

* **Sparse adjacency** — the engine walks the memoized CSR neighbour
  structure from :func:`repro.graphs.topologies.csr_adjacency` (built once
  per graph, shared across trials); no ``n × n`` matrix is ever formed.
* **Rank-only decoder state** — all ``n`` node subspaces live in a single
  batched :class:`~repro.backends.EliminatorState` built by the ambient
  compute backend (``gf2bit`` packs GF(2) rows into machine words), and a
  node's state is touched only when an event actually reaches it — a node
  that receives nothing does no work.
* **Early settling** — completion is a counter: a delivery that lifts a
  node's rank to ``k`` increments ``finished`` and records the completion
  round right there, so neither ``finished_nodes()`` nor any per-tick
  ``O(n)`` scan exists.  The asynchronous loop costs O(1) bookkeeping plus
  two O(k) encode/eliminate steps per timeslot; the synchronous loop buckets
  one round's transmissions into a queue and drains it at the round boundary,
  as the paper's synchronous semantics require.

Bit-identical by construction
-----------------------------
Like the batch engines, this engine is a *pure optimisation*: given the same
per-trial generator it emits exactly the
:class:`~repro.core.results.RunResult` the scalar engine would.  The
asynchronous wakeup draw is delegated to the very same
:class:`~repro.gossip.dynamics.NodeDynamics` methods (for uniform clocks,
``rng.integers(0, n)`` *is* the embedded jump chain of ``n`` i.i.d.
exponential node clocks, so the per-node-clock view and the paper's
one-uniform-node-per-slot view are the same process draw for draw); partner
selection indexes the same sorted neighbour tuples; coefficients are drawn
against the canonical RREF basis, whose uniqueness makes every encoded packet
and helpfulness flag coincide with the scalar decoder's; churn kills a
transmission before the loss draw, consuming no randomness.
``tests/test_event_engine.py`` asserts the equivalence per seed over both
time models, churn (pause *and* reset), heterogeneous rates and packet loss.

Unlike the lockstep fast path, reset-mode churn **is** supported: each trial
owns its eliminator, so a crash wipes one problem
(:meth:`~repro.backends.EliminatorState.reset_problems`) and re-seeds it from
the node's initial placement — exactly ``AlgebraicGossip.on_crash``.

The engine refuses anything it cannot replay exactly with a typed
:class:`~repro.errors.EngineError` (protocols outside rank-only uniform
algebraic gossip, e.g. TAG or non-uniform selectors) — never a silent
fallback to another engine.
"""

from __future__ import annotations

from typing import List

import networkx as nx
import numpy as np

from ..core.config import GossipAction, SimulationConfig, TimeModel
from ..core.results import RunResult
from ..errors import EngineError, SimulationError
from ..graphs.csr import CSRGraph
from ..graphs.topologies import csr_adjacency
from .dynamics import NodeDynamics
from .engine import GossipProcess

__all__ = [
    "EventGossipEngine",
    "run_event_trials",
    "build_event_process",
    "event_supports_process",
    "event_supports_config",
]


def build_event_process(graph, protocol_factory, rng) -> GossipProcess:
    """Build one trial's process for the event engine, honouring the graph type.

    For a networkx graph this is exactly ``protocol_factory(graph, rng)`` —
    the full process with scalar decoders, as the event runners always built.
    For a graph-free :class:`~repro.graphs.csr.CSRGraph` the factory must
    provide a ``rank_only_process`` method (``UniformGossipFactory`` does)
    building a decoder-less process from the *same* ``rng`` stream position;
    factories without one (TAG, spanning trees) raise a typed
    :class:`~repro.errors.EngineError`, never a silent fallback.
    """
    if isinstance(graph, CSRGraph):
        rank_only = getattr(protocol_factory, "rank_only_process", None)
        if rank_only is None:
            raise EngineError(
                f"{type(protocol_factory).__name__} cannot run on a CSRGraph: "
                "the graph-free pipeline supports rank-only uniform algebraic "
                "gossip only; materialise through the networkx path instead"
            )
        return rank_only(graph, rng)
    return protocol_factory(graph, rng)


def event_supports_process(process: GossipProcess) -> bool:
    """Can the event-driven engine replay ``process`` bit-identically?

    The engine tracks rank-only state against the canonical RREF basis, so it
    covers exactly the protocols whose observable behaviour is a function of
    ranks and the random stream: uniform algebraic gossip with the uniform
    selector — the same opt-in
    :meth:`~repro.gossip.engine.GossipProcess.supports_rank_only_batch`
    declares.
    """
    return bool(process.supports_rank_only_batch())


def event_supports_config(config: SimulationConfig) -> bool:
    """Can the event-driven engine honour every knob of ``config``?

    Always ``True``: packet loss, pause-mode churn, reset-mode churn (each
    trial owns its eliminator, so single problems can be wiped and re-seeded)
    and heterogeneous activation rates are all replayed bit-identically.
    The unsupported axis is the *protocol*, checked by
    :func:`event_supports_process`.
    """
    return True


class EventGossipEngine:
    """Run one trial of rank-only uniform algebraic gossip, event by event.

    Parameters
    ----------
    graph:
        The communication graph; its CSR adjacency is memoized per instance.
    process:
        The already-constructed protocol of this trial (setup draws consumed
        exactly as in the sequential path).  Must pass
        :func:`event_supports_process`, else :class:`EngineError`.
    config:
        The simulation configuration.
    rng:
        This trial's generator; every draw is issued in the scalar engine's
        exact order.
    """

    def __init__(
        self,
        graph: nx.Graph,
        process: GossipProcess,
        config: SimulationConfig,
        rng: np.random.Generator,
    ) -> None:
        if graph.number_of_nodes() < 2:
            raise SimulationError("gossip requires at least two nodes")
        connected = (
            graph.is_connected()
            if isinstance(graph, CSRGraph)
            else nx.is_connected(graph)
        )
        if not connected:
            raise SimulationError("gossip requires a connected graph")
        if not event_supports_process(process):
            raise EngineError(
                f"{type(process).__name__} is not supported by the event-driven "
                "engine: it replays rank-only uniform algebraic gossip only "
                "(AlgebraicGossip with a UniformSelector); run the scalar or "
                "batch engine instead"
            )
        from ..backends import resolve_backend

        self.graph = graph
        self.process = process
        self.config = config
        self.rng = rng
        # A CSRGraph's nodes are exactly 0..n-1, so its node view (a range)
        # serves directly — position == node id and no O(n) list is built.
        if isinstance(graph, CSRGraph):
            self._nodes = graph.nodes()
        else:
            self._nodes = sorted(graph.nodes())
        self._n = len(self._nodes)
        self._indptr, self._indices = csr_adjacency(graph)
        self._field = process.generation.field
        self._k = process.generation.k
        if self._field.order != config.field_size:
            raise SimulationError(
                f"generation field GF({self._field.order}) does not match "
                f"config field_size {config.field_size}"
            )
        self._eliminator = resolve_backend(None).make_eliminator(
            self._field, self._n, self._k
        )
        self._ranks = self._eliminator.ranks  # live view
        self._one_index = np.zeros(1, dtype=np.int64)
        self._messages_sent = 0
        self._helpful_messages = 0
        self._dropped_messages = 0
        self._churn_dropped = 0
        self._timeslot = 0
        self._loss_probability = config.loss_probability
        self._dynamics = NodeDynamics(config, self._nodes)
        self._last_crash_round = 0
        self._completion_rounds: dict[int, int] = {}
        self._noted = np.zeros(self._n, dtype=bool)
        self._finished = 0
        self._seed_from_process()

    # ------------------------------------------------------------------
    # Initial state
    # ------------------------------------------------------------------
    def _seed_from_process(self) -> None:
        """Absorb every node's initial knowledge, grouped into depth waves."""
        initial = getattr(self.process, "initial_coefficient_rows", None)
        if initial is not None:
            # Decoder-less processes (RankOnlyUniformGossip) report their
            # initial RREF rows directly; nothing per-node is built.
            node_rows = initial()
        else:
            node_rows = {
                node: decoder.coefficient_matrix()
                for node, decoder in self.process.decoders.items()
            }
        if isinstance(self._nodes, range):
            pos = None  # position == node id on the CSR pipeline
        else:
            pos = {node: index for index, node in enumerate(self._nodes)}
        initial_rows: dict[int, np.ndarray] = {}
        max_depth = 0
        for node, matrix in node_rows.items():
            if matrix.shape[0]:
                initial_rows[node if pos is None else pos[node]] = matrix
                max_depth = max(max_depth, matrix.shape[0])
        for depth in range(max_depth):
            indices = [
                problem
                for problem, matrix in initial_rows.items()
                if matrix.shape[0] > depth
            ]
            rows = np.stack([initial_rows[problem][depth] for problem in indices])
            self._eliminator.eliminate(rows, np.asarray(indices, dtype=np.int64))
        for position in np.nonzero(self._ranks == self._k)[0]:
            self._note_completion(int(position), 0)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Run the trial to completion (or to the ``max_rounds`` limit)."""
        if self.config.time_model is TimeModel.SYNCHRONOUS:
            rounds = self._run_synchronous()
        else:
            rounds = self._run_asynchronous()
        completed = self._finished == self._n
        if not completed and not self.config.allow_incomplete:
            raise SimulationError(
                f"protocol did not complete within {self.config.max_rounds} rounds"
            )
        metadata = dict(self.process.metadata())
        metadata["min_rank"] = int(self._ranks.min())
        if self._loss_probability > 0:
            metadata.setdefault("dropped_messages", self._dropped_messages)
        if self._dynamics.has_churn:
            metadata.setdefault("churn_dropped_messages", self._churn_dropped)
        return RunResult(
            rounds=rounds,
            timeslots=self._timeslot,
            completed=completed,
            n=self._n,
            k=int(metadata.pop("k", 0)),
            completion_rounds=dict(self._completion_rounds),
            messages_sent=self._messages_sent,
            helpful_messages=self._helpful_messages,
            metadata=metadata,
        )

    # ------------------------------------------------------------------
    # Time models
    # ------------------------------------------------------------------
    def _run_asynchronous(self) -> int:
        from ..backends.accel import async_event_kernel

        kernel = async_event_kernel(self)
        if kernel is not None:
            return kernel()
        round_index = 0
        max_timeslots = self.config.max_rounds * self._n
        dynamics = self._dynamics
        rng = self.rng
        indptr, indices = self._indptr, self._indices
        action = self.process.action
        do_push = action in (GossipAction.PUSH, GossipAction.EXCHANGE)
        do_pull = action in (GossipAction.PULL, GossipAction.EXCHANGE)
        has_churn = dynamics.has_churn
        n = self._n
        while self._finished < n:
            if self._timeslot >= max_timeslots:
                return round_index
            round_now = self._timeslot // n + 1
            self._process_crashes(round_now)
            down = dynamics.down_mask(round_now) if has_churn else None
            pos = dynamics.choose_wakeup(rng, round_now, down)
            self._timeslot += 1
            round_index = round_now
            if pos is None:
                continue
            start = indptr[pos]
            degree = int(indptr[pos + 1] - start)
            partner = int(indices[start + int(rng.integers(0, degree))])
            # Both packets are built before either is delivered, matching the
            # scalar on_wakeup (PUSH draws first, then PULL).
            row_push = self._encode(pos) if do_push else None
            row_pull = self._encode(partner) if do_pull else None
            if row_push is not None:
                self._deliver(pos, partner, row_push, round_now, down)
            if row_pull is not None:
                self._deliver(partner, pos, row_pull, round_now, down)
        return round_index

    def _run_synchronous(self) -> int:
        round_index = 0
        dynamics = self._dynamics
        rng = self.rng
        indptr, indices = self._indptr, self._indices
        action = self.process.action
        do_push = action in (GossipAction.PUSH, GossipAction.EXCHANGE)
        do_pull = action in (GossipAction.PULL, GossipAction.EXCHANGE)
        has_churn = dynamics.has_churn
        n = self._n
        while self._finished < n:
            if round_index >= self.config.max_rounds:
                return round_index
            round_index += 1
            self._process_crashes(round_index)
            down = dynamics.down_mask(round_index) if has_churn else None
            # Wakeup phase: all partner/coefficient draws against committed
            # state, transmissions bucketed for the round boundary.
            bucket: list[tuple[int, int, object]] = []
            for pos in range(n):
                if down is not None and down[pos]:
                    continue
                start = indptr[pos]
                degree = int(indptr[pos + 1] - start)
                partner = int(indices[start + int(rng.integers(0, degree))])
                row_push = self._encode(pos) if do_push else None
                row_pull = self._encode(partner) if do_pull else None
                if row_push is not None:
                    bucket.append((pos, partner, row_push))
                if row_pull is not None:
                    bucket.append((partner, pos, row_pull))
            self._timeslot += n
            # Deliveries become visible only now: end of the round.
            for sender, receiver, row in bucket:
                self._deliver(sender, receiver, row, round_index, down)
        return round_index

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _encode(self, pos: int):
        """One freshly coded packet of the node at ``pos`` (or ``None``).

        The payload is whatever the backend's ``combine_one`` hands back — a
        packed python int for gf2bit, a dense row elsewhere — and is only
        ever fed to the same eliminator's ``eliminate_one``.
        """
        rank = int(self._ranks[pos])
        if rank == 0:
            return None
        coefficients = self._field.random_elements(self.rng, rank)
        return self._eliminator.combine_one(pos, coefficients)

    def _deliver(
        self,
        sender_pos: int,
        receiver_pos: int,
        row: object,
        round_index: int,
        down: np.ndarray | None,
    ) -> None:
        self._messages_sent += 1
        # A down endpoint kills the transmission before it enters the lossy
        # channel, so churn consumes no loss-randomness.
        if down is not None and (down[sender_pos] or down[receiver_pos]):
            self._churn_dropped += 1
            return
        if self._loss_probability > 0 and self.rng.random() < self._loss_probability:
            self._dropped_messages += 1
            return
        helpful = self._eliminator.eliminate_one(receiver_pos, row)
        if helpful:
            self._helpful_messages += 1
            if self._ranks[receiver_pos] == self._k and not self._noted[receiver_pos]:
                self._note_completion(receiver_pos, round_index)

    def _note_completion(self, pos: int, round_index: int) -> None:
        self._noted[pos] = True
        self._finished += 1
        self._completion_rounds[self._nodes[pos]] = round_index

    def _process_crashes(self, round_index: int) -> None:
        """Reset-mode churn: wipe crashing nodes back to initial knowledge."""
        if not self._dynamics.reset_on_crash:
            return
        while self._last_crash_round < round_index:
            self._last_crash_round += 1
            for pos in self._dynamics.crashes_at(self._last_crash_round):
                self._reset_node(pos, round_index)

    def _reset_node(self, pos: int, round_index: int) -> None:
        """One problem's ``on_crash``: wipe, re-seed placement, re-note.

        Mirrors ``reset_node_to_initial_knowledge`` (which consumes no
        randomness); the completion round must be re-earned, not inherited
        from before the crash — unless the initial placement alone is already
        full rank, in which case the scalar engine re-notes the node at the
        end of the crash round, as we do here.
        """
        node = self._nodes[pos]
        if self._noted[pos]:
            self._noted[pos] = False
            self._finished -= 1
        self._completion_rounds.pop(node, None)
        self._one_index[0] = pos
        self._eliminator.reset_problems(self._one_index)
        for message_index in getattr(self.process, "_placement", {}).get(node, ()):
            unit = self._field.zeros((1, self._k))
            unit[0, int(message_index)] = 1
            self._eliminator.eliminate(unit, self._one_index)
        if self._ranks[pos] == self._k:
            self._note_completion(pos, round_index)


def run_event_trials(
    graph: nx.Graph,
    processes: List[GossipProcess],
    config: SimulationConfig,
    rngs: List[np.random.Generator],
) -> List[RunResult]:
    """Event-driven trial executor matching the ``BatchRunner`` signature.

    Runs each trial through its own :class:`EventGossipEngine` (the CSR
    adjacency is shared via the per-graph memo).  Raises
    :class:`~repro.errors.EngineError` if any trial's protocol is outside the
    engine's support — explicitly, never by falling back.
    """
    if len(processes) != len(rngs):
        raise SimulationError(
            f"{len(processes)} processes but {len(rngs)} generators"
        )
    return [
        EventGossipEngine(graph, process, config, rng).run()
        for process, rng in zip(processes, rngs)
    ]
