"""Gossip machinery: communication models, the engines and event traces."""

from .batch import (
    BatchEngineCore,
    BatchGossipEngine,
    batch_supports_config,
    run_rank_only_batch,
)
from .batch_tag import (
    BatchSpanningTreeEngine,
    BatchTagEngine,
    run_spanning_tree_batch,
    run_tag_batch,
)
from .communication import (
    FixedPartnerSelector,
    PartnerSelector,
    RoundRobinSelector,
    UniformSelector,
)
from .dynamics import NodeDynamics
from .engine import BatchRunner, GossipEngine, GossipProcess, Transmission, run_protocol
from .event import (
    EventGossipEngine,
    event_supports_config,
    event_supports_process,
    run_event_trials,
)
from .trace import EventTrace, GossipEvent

__all__ = [
    "BatchEngineCore",
    "BatchGossipEngine",
    "batch_supports_config",
    "NodeDynamics",
    "BatchSpanningTreeEngine",
    "BatchTagEngine",
    "BatchRunner",
    "run_rank_only_batch",
    "run_spanning_tree_batch",
    "run_tag_batch",
    "FixedPartnerSelector",
    "PartnerSelector",
    "RoundRobinSelector",
    "UniformSelector",
    "GossipEngine",
    "GossipProcess",
    "Transmission",
    "run_protocol",
    "EventGossipEngine",
    "event_supports_config",
    "event_supports_process",
    "run_event_trials",
    "EventTrace",
    "GossipEvent",
]
