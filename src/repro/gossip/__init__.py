"""Gossip machinery: communication models, the engine and event traces."""

from .communication import (
    FixedPartnerSelector,
    PartnerSelector,
    RoundRobinSelector,
    UniformSelector,
)
from .engine import GossipEngine, GossipProcess, Transmission, run_protocol
from .trace import EventTrace, GossipEvent

__all__ = [
    "FixedPartnerSelector",
    "PartnerSelector",
    "RoundRobinSelector",
    "UniformSelector",
    "GossipEngine",
    "GossipProcess",
    "Transmission",
    "run_protocol",
    "EventTrace",
    "GossipEvent",
]
