"""Gossip machinery: communication models, the engines and event traces."""

from .batch import BatchGossipEngine
from .communication import (
    FixedPartnerSelector,
    PartnerSelector,
    RoundRobinSelector,
    UniformSelector,
)
from .engine import GossipEngine, GossipProcess, Transmission, run_protocol
from .trace import EventTrace, GossipEvent

__all__ = [
    "BatchGossipEngine",
    "FixedPartnerSelector",
    "PartnerSelector",
    "RoundRobinSelector",
    "UniformSelector",
    "GossipEngine",
    "GossipProcess",
    "Transmission",
    "run_protocol",
    "EventTrace",
    "GossipEvent",
]
