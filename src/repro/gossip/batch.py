"""Vectorised batch-trial simulation of gossip processes.

The sequential :class:`~repro.gossip.engine.GossipEngine` runs one trial at a
time, and every received packet pays a Python-level incremental
Gaussian-elimination loop inside the node's scalar decoder — the dominant
cost of every Monte Carlo benchmark in this repository.  The engines in this
module (and in :mod:`repro.gossip.batch_tag`) run ``T`` independent trials in
lockstep instead: per-trial node state is kept as stacked ``T x n`` arrays,
and all ``T x n`` decoder states live in one
:class:`~repro.rlnc.batch.BatchDecoder`, so each (round, wave) of deliveries
is a single vectorised ``GF(q)`` sweep instead of ``T x n`` scalar loops.

Protocols opt in through :meth:`GossipProcess.batch_strategy
<repro.gossip.engine.GossipProcess.batch_strategy>`, which names the
vectorised executor for that protocol:

* :class:`BatchGossipEngine` (here) — rank-only uniform algebraic gossip;
* :class:`~repro.gossip.batch_tag.BatchTagEngine` — the two-phase TAG
  protocol with any supported spanning-tree protocol;
* :class:`~repro.gossip.batch_tag.BatchSpanningTreeEngine` — spanning-tree
  protocols run standalone (the Theorem 5 broadcast measurements).

Bit-identical semantics
-----------------------
Every batch engine is a *pure optimisation*: given the same per-trial random
generators it produces exactly the same :class:`~repro.core.results.RunResult`
objects as running :class:`GossipEngine` once per trial.  Three properties
make this work:

1. **Random streams are replicated call-for-call.**  Each trial keeps its own
   ``numpy.random.Generator`` and the engine issues partner-selection,
   coefficient and loss draws in precisely the order the sequential engine
   would (the linear algebra is vectorised across trials; the randomness is
   not).
2. **The RREF basis is canonical.**  Scalar decoders keep their rows in
   reduced row-echelon form ordered by pivot column; the unique RREF basis of
   a subspace means the batch decoder's stored rows — and therefore every
   encoded packet — coincide exactly with the scalar decoder's.
3. **Within-round delivery order is preserved per node.**  Coded-packet
   deliveries are re-grouped into waves (one row per receiving decoder per
   sweep), but the FIFO order of packets arriving at any single node is kept,
   so every individual helpfulness flag matches the sequential run.
   Tree-protocol payloads touch per-trial tree state only (never the decoder
   grid and never the random stream), so applying them inline while coded
   rows are queued cannot reorder anything observable.

Payloads are never touched: the batch path only answers "when does every node
finish", which is the only question the stopping-time experiments ask.
Protocols that need payload recovery or carry unsupported state must keep
using the sequential engine (their :meth:`batch_strategy` returns ``None``).

The linear algebra underneath the decoder grid is supplied by the ambient
:mod:`repro.backends` backend (dense numpy by default, word-packed GF(2)
kernels under ``gf2bit``); because every backend maintains the same canonical
RREF state, the bit-identical guarantee above holds across backends too.
"""

from __future__ import annotations

from typing import Any

import networkx as nx
import numpy as np

from ..core.config import GossipAction, SimulationConfig, TimeModel
from ..core.results import RunResult
from ..errors import SimulationError
from ..rlnc.batch import BatchDecoder
from .dynamics import NodeDynamics
from .engine import GossipProcess

__all__ = [
    "BatchEngineCore",
    "RlncBatchMixin",
    "BatchGossipEngine",
    "run_rank_only_batch",
    "batch_supports_config",
]

#: Delivery entries produced by ``_wakeup``: coded rows go to the vectorised
#: decoder grid (``("r", receiver_problem, row, sender_pos)``), tree payloads
#: (``("s", receiver_pos, sender_pos, payload)``) are applied per trial by
#: the subclass.
_RLNC = "r"
_STP = "s"


def batch_supports_config(config: SimulationConfig) -> bool:
    """Can the batch fast path honour every knob of ``config``?

    The batch engines support pause-mode churn (both time models) and
    heterogeneous activation rates (asynchronous) — the trial runners fall
    back to the sequential :class:`~repro.gossip.engine.GossipEngine` only
    for **reset-mode churn**, where a crash wipes a node's decoder: the
    shared :class:`~repro.rlnc.batch.BatchDecoder` grid stores the canonical
    RREF rows of all trials in fixed arrays and cannot cheaply un-absorb one
    problem's rows mid-run.  See the support matrix in
    ``docs/architecture.md``.
    """
    return not config.churn_reset


class BatchEngineCore:
    """Shared lockstep machinery for batch-trial gossip engines.

    Owns everything protocol-independent: trial bookkeeping, the synchronous
    and asynchronous time-model loops (mirroring
    :class:`~repro.gossip.engine.GossipEngine` draw-for-draw), message / loss
    / helpfulness counters, per-node completion rounds, and result assembly.

    Subclasses implement the protocol-specific hooks:

    * :meth:`_wakeup` — what a waking node transmits, as ``("r", problem,
      row)`` coded entries and/or ``("s", receiver_pos, sender_pos, payload)``
      tree entries, drawing from the trial's generator exactly as the scalar
      protocol would;
    * :meth:`_apply_rows` — absorb one wave of coded rows (at most one per
      receiving decoder);
    * :meth:`_apply_tree_payload` — apply one tree-protocol payload, returning
      its helpfulness;
    * :meth:`_finished_mask` — which nodes of a trial have individually
      completed;
    * :meth:`_trial_metadata` — the per-trial metadata dict, matching the
      scalar protocol's :meth:`~repro.gossip.engine.GossipProcess.metadata`.
    """

    def __init__(
        self,
        graph: nx.Graph,
        processes: list[GossipProcess],
        config: SimulationConfig,
        rngs: list[np.random.Generator],
    ) -> None:
        if graph.number_of_nodes() < 2:
            raise SimulationError("gossip requires at least two nodes")
        if not nx.is_connected(graph):
            raise SimulationError("gossip requires a connected graph")
        if not processes:
            raise SimulationError(f"{type(self).__name__} needs at least one trial")
        if len(processes) != len(rngs):
            raise SimulationError(
                f"{len(processes)} processes but {len(rngs)} generators"
            )
        self.graph = graph
        self.processes = processes
        self.config = config
        self.rngs = rngs
        self.trials = len(processes)
        self._nodes = sorted(graph.nodes())
        self._n = len(self._nodes)
        self._pos = {node: pos for pos, node in enumerate(self._nodes)}
        # Per-trial counters, mirroring GossipEngine's scalars.
        self._messages_sent = np.zeros(self.trials, dtype=np.int64)
        self._helpful_messages = np.zeros(self.trials, dtype=np.int64)
        self._dropped_messages = np.zeros(self.trials, dtype=np.int64)
        self._timeslots = np.zeros(self.trials, dtype=np.int64)
        self._completion_rounds: list[dict[int, int]] = [{} for _ in range(self.trials)]
        self._noted = np.zeros((self.trials, self._n), dtype=bool)
        self._loss_probability = config.loss_probability
        if not batch_supports_config(config):
            raise SimulationError(
                "the batch fast path does not support churn_reset; "
                "run GossipEngine per trial instead"
            )
        self._dynamics = NodeDynamics(config, self._nodes)
        self._churn_dropped = np.zeros(self.trials, dtype=np.int64)

    # ------------------------------------------------------------------
    # Protocol hooks
    # ------------------------------------------------------------------
    def _wakeup(self, t: int, pos: int) -> list[tuple]:
        """Transmissions of node position ``pos`` of trial ``t`` waking up."""
        raise NotImplementedError

    def _apply_rows(self, wave: list[tuple[int, np.ndarray, int]]) -> None:
        """Absorb one wave of ``(problem, row, trial)`` coded entries."""
        raise NotImplementedError(
            f"{type(self).__name__} produced a coded-row delivery but does "
            "not implement _apply_rows"
        )

    def _apply_tree_payload(
        self, t: int, receiver_pos: int, sender_pos: int, payload: Any
    ) -> bool:
        """Apply one tree-protocol payload; return its helpfulness."""
        raise NotImplementedError(
            f"{type(self).__name__} produced a tree delivery but does not "
            "implement _apply_tree_payload"
        )

    def _finished_mask(self, t: int) -> np.ndarray:
        """Boolean ``(n,)`` mask of individually completed nodes of trial ``t``."""
        raise NotImplementedError

    def _trial_metadata(self, t: int) -> dict[str, Any]:
        """Metadata dict of trial ``t``, matching the scalar protocol's."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> list[RunResult]:
        """Run every trial to completion (or the round limit); results in trial order."""
        if self.config.time_model is TimeModel.SYNCHRONOUS:
            rounds, completed = self._run_synchronous()
        else:
            rounds, completed = self._run_asynchronous()
        results: list[RunResult] = []
        for t in range(self.trials):
            if not completed[t] and not self.config.allow_incomplete:
                raise SimulationError(
                    f"protocol did not complete within {self.config.max_rounds} rounds"
                )
            metadata = self._trial_metadata(t)
            if self._loss_probability > 0:
                metadata.setdefault("dropped_messages", int(self._dropped_messages[t]))
            if self._dynamics.has_churn:
                metadata.setdefault(
                    "churn_dropped_messages", int(self._churn_dropped[t])
                )
            results.append(
                RunResult(
                    rounds=int(rounds[t]),
                    timeslots=int(self._timeslots[t]),
                    completed=bool(completed[t]),
                    n=self._n,
                    k=int(metadata.pop("k", 0)),
                    completion_rounds=dict(self._completion_rounds[t]),
                    messages_sent=int(self._messages_sent[t]),
                    helpful_messages=int(self._helpful_messages[t]),
                    metadata=metadata,
                )
            )
        return results

    # ------------------------------------------------------------------
    # Time models
    # ------------------------------------------------------------------
    def _start(self) -> tuple[np.ndarray, np.ndarray, list[int]]:
        rounds = np.zeros(self.trials, dtype=np.int64)
        completed = np.zeros(self.trials, dtype=bool)
        for t in range(self.trials):
            self._note_completions(t, 0)
        active = [t for t in range(self.trials) if not self._trial_complete(t)]
        completed[[t for t in range(self.trials) if t not in active]] = True
        return rounds, completed, active

    def _run_synchronous(self) -> tuple[np.ndarray, np.ndarray]:
        rounds, completed, active = self._start()
        round_index = 0
        while active and round_index < self.config.max_rounds:
            round_index += 1
            down = (
                self._dynamics.down_mask(round_index)
                if self._dynamics.has_churn
                else None
            )
            pending = self._collect_wakeups(active, down)
            self._timeslots[active] += self._n
            self._deliver_in_waves(pending, down)
            still_active = []
            for t in active:
                self._note_completions(t, round_index)
                if self._trial_complete(t):
                    rounds[t] = round_index
                    completed[t] = True
                else:
                    still_active.append(t)
            active = still_active
        # Trials that never finished stopped at the round limit, exactly as
        # the sequential engine reports.
        for t in active:
            rounds[t] = self.config.max_rounds
        return rounds, completed

    def _run_asynchronous(self) -> tuple[np.ndarray, np.ndarray]:
        rounds, completed, active = self._start()
        max_timeslots = self.config.max_rounds * self._n
        while active:
            survivors = []
            for t in active:
                if self._timeslots[t] >= max_timeslots:
                    rounds[t] = -(-int(self._timeslots[t]) // self._n)
                else:
                    survivors.append(t)
            active = survivors
            if not active:
                break
            # Active trials advance in lockstep (every survivor gains one
            # slot per iteration), so the round of the slot about to be
            # played — and hence the down mask, memoised per round inside
            # NodeDynamics — is shared across them.
            round_now = int(self._timeslots[active[0]]) // self._n + 1
            down = (
                self._dynamics.down_mask(round_now)
                if self._dynamics.has_churn
                else None
            )
            waves: tuple[list, list] = ([], [])
            for t in active:
                rng = self.rngs[t]
                pos = self._dynamics.choose_wakeup(rng, round_now, down)
                self._timeslots[t] += 1
                if pos is None:
                    continue
                entries = self._wakeup(t, pos)
                wave_slot = 0
                for entry in entries:
                    self._messages_sent[t] += 1
                    if self._churn_drops(t, entry, down):
                        self._churn_dropped[t] += 1
                        continue
                    if (
                        self._loss_probability > 0
                        and rng.random() < self._loss_probability
                    ):
                        self._dropped_messages[t] += 1
                        continue
                    if entry[0] == _RLNC:
                        waves[wave_slot].append((entry[1], entry[2], t))
                        wave_slot += 1
                    elif self._apply_tree_payload(t, entry[1], entry[2], entry[3]):
                        self._helpful_messages[t] += 1
            for wave in waves:
                if wave:
                    self._apply_rows(wave)
            still_active = []
            for t in active:
                round_now = -(-int(self._timeslots[t]) // self._n)
                self._note_completions(t, round_now)
                if self._trial_complete(t):
                    rounds[t] = round_now
                    completed[t] = True
                else:
                    still_active.append(t)
            active = still_active
        return rounds, completed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _trial_complete(self, t: int) -> bool:
        return bool(np.all(self._finished_mask(t)))

    def _note_completions(self, t: int, round_index: int) -> None:
        newly = self._finished_mask(t) & ~self._noted[t]
        if newly.any():
            for pos in np.nonzero(newly)[0]:
                self._completion_rounds[t][self._nodes[pos]] = round_index
            self._noted[t][newly] = True

    def _churn_drops(
        self, t: int, entry: tuple, down: np.ndarray | None
    ) -> bool:
        """Does churn kill this delivery entry (sender or receiver down)?"""
        if down is None:
            return False
        if entry[0] == _RLNC:
            receiver_pos = entry[1] - t * self._n
            sender_pos = entry[3]
        else:
            receiver_pos, sender_pos = entry[1], entry[2]
        return bool(down[receiver_pos] or down[sender_pos])

    def _collect_wakeups(
        self, active: list[int], down: np.ndarray | None = None
    ) -> list[tuple[int, list[tuple]]]:
        """Synchronous wakeup phase: all draws, no decoder/tree mutation."""
        pending: list[tuple[int, list[tuple]]] = []
        for t in active:
            trial_pending: list[tuple] = []
            for pos in range(self._n):
                if down is not None and down[pos]:
                    continue
                trial_pending.extend(self._wakeup(t, pos))
            pending.append((t, trial_pending))
        return pending

    def _deliver_in_waves(
        self,
        pending: list[tuple[int, list[tuple]]],
        down: np.ndarray | None = None,
    ) -> None:
        """End-of-round delivery: loss draws in pending order, then waves.

        Tree payloads are applied inline (per-trial scalar state, no random
        draws); coded rows are queued per receiving decoder — FIFO order per
        receiver preserved — and absorbed in depth waves, one vectorised
        sweep per depth.  Churn drops (down sender or receiver) happen before
        the loss draw, exactly as in the sequential engine.
        """
        queues: dict[int, list[tuple[np.ndarray, int]]] = {}
        for t, trial_pending in pending:
            rng = self.rngs[t]
            for entry in trial_pending:
                self._messages_sent[t] += 1
                if self._churn_drops(t, entry, down):
                    self._churn_dropped[t] += 1
                    continue
                if (
                    self._loss_probability > 0
                    and rng.random() < self._loss_probability
                ):
                    self._dropped_messages[t] += 1
                    continue
                if entry[0] == _RLNC:
                    queues.setdefault(entry[1], []).append((entry[2], t))
                elif self._apply_tree_payload(t, entry[1], entry[2], entry[3]):
                    self._helpful_messages[t] += 1
        depth = 0
        while True:
            wave = [
                (problem, entries[depth][0], entries[depth][1])
                for problem, entries in queues.items()
                if len(entries) > depth
            ]
            if not wave:
                break
            self._apply_rows(wave)
            depth += 1


class RlncBatchMixin:
    """Decoder grid shared by the RLNC-carrying batch engines.

    Adds a :class:`~repro.rlnc.batch.BatchDecoder` spanning ``trials x n``
    problems, seeds it from the per-trial scalar decoders (so construction
    time state matches exactly), and provides the rank-based completion mask
    plus the vectorised encode / receive steps.
    """

    _decoder: BatchDecoder

    def _init_decoder_grid(self) -> None:
        first = self.processes[0]
        self.field = first.generation.field
        self.k = first.generation.k
        for process in self.processes:
            if process.generation.k != self.k or process.generation.field != self.field:
                raise SimulationError("all batched trials must share k and the field")
        self._decoder = BatchDecoder(self.field, self.k, self.trials * self._n)
        self._seed_from_processes()

    def _seed_from_processes(self) -> None:
        """Absorb every trial decoder's initial rows into the batch state.

        Rows are grouped into depth waves — the ``d``-th stored row of every
        problem in one vectorised sweep — mirroring how deliveries are waved
        during the run, so even an all-to-all start costs ``max_rows`` sweeps
        rather than one eliminate call per node per trial.
        """
        initial_rows: dict[int, np.ndarray] = {}
        max_depth = 0
        for t, process in enumerate(self.processes):
            base = t * self._n
            for node, decoder in process.decoders.items():
                matrix = decoder.coefficient_matrix()
                if matrix.shape[0]:
                    initial_rows[base + self._pos[node]] = matrix
                    max_depth = max(max_depth, matrix.shape[0])
        for depth in range(max_depth):
            indices = [
                problem for problem, matrix in initial_rows.items()
                if matrix.shape[0] > depth
            ]
            rows = np.stack([initial_rows[problem][depth] for problem in indices])
            self._decoder.receive(rows, np.asarray(indices, dtype=np.int64))

    def _trial_ranks(self, t: int) -> np.ndarray:
        return self._decoder.ranks[t * self._n : (t + 1) * self._n]

    def _finished_mask(self, t: int) -> np.ndarray:
        return self._trial_ranks(t) == self.k

    def _encode(self, problem: int, rng: np.random.Generator) -> np.ndarray | None:
        """One freshly coded coefficient vector, or ``None`` at rank zero."""
        rank = int(self._decoder.ranks[problem])
        if rank == 0:
            return None
        coefficients = self.field.random_elements(rng, rank)
        return self._decoder.encode(problem, coefficients)

    def _apply_rows(self, wave: list[tuple[int, np.ndarray, int]]) -> None:
        """One vectorised sweep: at most one row per receiving decoder."""
        if not wave:
            return
        indices = np.fromiter((entry[0] for entry in wave), dtype=np.int64, count=len(wave))
        rows = np.stack([entry[1] for entry in wave])
        trials = np.fromiter((entry[2] for entry in wave), dtype=np.int64, count=len(wave))
        helpful = self._decoder.receive(rows, indices)
        np.add.at(self._helpful_messages, trials[helpful], 1)


class BatchGossipEngine(RlncBatchMixin, BatchEngineCore):
    """Run ``T`` trials of a rank-only gossip process as one vectorised system.

    Parameters
    ----------
    graph:
        The communication graph shared by all trials.
    processes:
        One protocol instance per trial, each already constructed with that
        trial's generator (so any setup-time draws — e.g. random payloads —
        have been consumed exactly as in the sequential path).  Every process
        must report :meth:`~repro.gossip.engine.GossipProcess.supports_rank_only_batch`.
    config:
        The shared simulation configuration.
    rngs:
        The per-trial generators, aligned with ``processes``.
    """

    def __init__(
        self,
        graph: nx.Graph,
        processes: list[GossipProcess],
        config: SimulationConfig,
        rngs: list[np.random.Generator],
    ) -> None:
        super().__init__(graph, processes, config, rngs)
        for process in processes:
            if not self.is_batchable(process):
                raise SimulationError(
                    f"{type(process).__name__} does not support the rank-only "
                    "batch fast path; use GossipEngine per trial instead"
                )
        first = processes[0]
        for process in processes:
            if process.action is not first.action:
                raise SimulationError("all batched trials must share the gossip action")
        self.action = first.action
        self._init_decoder_grid()

    @staticmethod
    def is_batchable(process: GossipProcess) -> bool:
        """Does ``process`` opt in to the rank-only batch fast path?"""
        return bool(process.supports_rank_only_batch())

    def _wakeup(self, t: int, pos: int) -> list[tuple]:
        """Replicate ``AlgebraicGossip.on_wakeup`` against the batch state.

        Returns ``("r", receiver_problem, coefficient_row, sender_pos)``
        entries; the random draws (partner, then sender coefficients in
        PUSH-then-PULL order) match the scalar protocol call-for-call.
        """
        rng = self.rngs[t]
        process = self.processes[t]
        partner = process.selector.partner(self._nodes[pos], rng)
        if partner is None:
            return []
        base = t * self._n
        ppos = self._pos[partner]
        entries: list[tuple] = []
        if self.action in (GossipAction.PUSH, GossipAction.EXCHANGE):
            row = self._encode(base + pos, rng)
            if row is not None:
                entries.append((_RLNC, base + ppos, row, pos))
        if self.action in (GossipAction.PULL, GossipAction.EXCHANGE):
            row = self._encode(base + ppos, rng)
            if row is not None:
                entries.append((_RLNC, base + pos, row, ppos))
        return entries

    def _trial_metadata(self, t: int) -> dict[str, Any]:
        metadata = dict(self.processes[t].metadata())
        metadata["min_rank"] = int(self._trial_ranks(t).min())
        return metadata


def run_rank_only_batch(
    graph: nx.Graph,
    processes: list[GossipProcess],
    config: SimulationConfig,
    rngs: list[np.random.Generator],
) -> list[RunResult]:
    """Batch executor for rank-only protocols (the default strategy target)."""
    return BatchGossipEngine(graph, processes, config, rngs).run()
