"""Vectorised batch-trial simulation of rank-only gossip processes.

The sequential :class:`~repro.gossip.engine.GossipEngine` runs one trial at a
time, and every received packet pays a Python-level incremental
Gaussian-elimination loop inside the node's scalar decoder — the dominant
cost of every Monte Carlo benchmark in this repository.
:class:`BatchGossipEngine` runs ``T`` independent trials of a *rank-only*
protocol (see :meth:`GossipProcess.supports_rank_only_batch
<repro.gossip.engine.GossipProcess.supports_rank_only_batch>`) in lockstep
and keeps all ``T x n`` decoder states in one
:class:`~repro.rlnc.batch.BatchDecoder`, so each (round, wave) of deliveries
is a single vectorised ``GF(q)`` sweep instead of ``T x n`` scalar loops.

Bit-identical semantics
-----------------------
The batch engine is a *pure optimisation*: given the same per-trial random
generators it produces exactly the same :class:`~repro.core.results.RunResult`
objects as running :class:`GossipEngine` once per trial.  Three properties
make this work:

1. **Random streams are replicated call-for-call.**  Each trial keeps its own
   ``numpy.random.Generator`` and the engine issues partner-selection,
   coefficient and loss draws in precisely the order the sequential engine
   would (the linear algebra is vectorised across trials; the randomness is
   not).
2. **The RREF basis is canonical.**  Scalar decoders keep their rows in
   reduced row-echelon form ordered by pivot column; the unique RREF basis of
   a subspace means the batch decoder's stored rows — and therefore every
   encoded packet — coincide exactly with the scalar decoder's.
3. **Within-round delivery order is preserved per node.**  Deliveries are
   re-grouped into waves (one row per receiving decoder per sweep), but the
   FIFO order of packets arriving at any single node is kept, so every
   individual helpfulness flag matches the sequential run.

Payloads are never touched: the batch path only answers "when does every node
reach full rank", which is the only question the stopping-time experiments
ask.  Protocols that need payload recovery or carry non-rank state must keep
using the sequential engine.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..core.config import GossipAction, SimulationConfig, TimeModel
from ..core.results import RunResult
from ..errors import SimulationError
from ..rlnc.batch import BatchDecoder
from .engine import GossipProcess

__all__ = ["BatchGossipEngine"]


class BatchGossipEngine:
    """Run ``T`` trials of a rank-only gossip process as one vectorised system.

    Parameters
    ----------
    graph:
        The communication graph shared by all trials.
    processes:
        One protocol instance per trial, each already constructed with that
        trial's generator (so any setup-time draws — e.g. random payloads —
        have been consumed exactly as in the sequential path).  Every process
        must report :meth:`~repro.gossip.engine.GossipProcess.supports_rank_only_batch`.
    config:
        The shared simulation configuration.
    rngs:
        The per-trial generators, aligned with ``processes``.
    """

    def __init__(
        self,
        graph: nx.Graph,
        processes: list[GossipProcess],
        config: SimulationConfig,
        rngs: list[np.random.Generator],
    ) -> None:
        if graph.number_of_nodes() < 2:
            raise SimulationError("gossip requires at least two nodes")
        if not nx.is_connected(graph):
            raise SimulationError("gossip requires a connected graph")
        if not processes:
            raise SimulationError("BatchGossipEngine needs at least one trial")
        if len(processes) != len(rngs):
            raise SimulationError(
                f"{len(processes)} processes but {len(rngs)} generators"
            )
        for process in processes:
            if not self.is_batchable(process):
                raise SimulationError(
                    f"{type(process).__name__} does not support the rank-only "
                    "batch fast path; use GossipEngine per trial instead"
                )
        self.graph = graph
        self.processes = processes
        self.config = config
        self.rngs = rngs
        self.trials = len(processes)
        self._nodes = sorted(graph.nodes())
        self._n = len(self._nodes)
        self._pos = {node: pos for pos, node in enumerate(self._nodes)}
        first = processes[0]
        self.field = first.generation.field
        self.k = first.generation.k
        for process in processes:
            if process.generation.k != self.k or process.generation.field != self.field:
                raise SimulationError("all batched trials must share k and the field")
            if process.action is not first.action:
                raise SimulationError("all batched trials must share the gossip action")
        self.action = first.action
        self._decoder = BatchDecoder(self.field, self.k, self.trials * self._n)
        self._seed_from_processes()
        # Per-trial counters, mirroring GossipEngine's scalars.
        self._messages_sent = np.zeros(self.trials, dtype=np.int64)
        self._helpful_messages = np.zeros(self.trials, dtype=np.int64)
        self._dropped_messages = np.zeros(self.trials, dtype=np.int64)
        self._timeslots = np.zeros(self.trials, dtype=np.int64)
        self._completion_rounds: list[dict[int, int]] = [{} for _ in range(self.trials)]
        self._noted = np.zeros((self.trials, self._n), dtype=bool)
        self._loss_probability = config.loss_probability

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @staticmethod
    def is_batchable(process: GossipProcess) -> bool:
        """Does ``process`` opt in to the rank-only batch fast path?"""
        return bool(process.supports_rank_only_batch())

    def run(self) -> list[RunResult]:
        """Run every trial to completion (or the round limit); results in trial order."""
        if self.config.time_model is TimeModel.SYNCHRONOUS:
            rounds, completed = self._run_synchronous()
        else:
            rounds, completed = self._run_asynchronous()
        results: list[RunResult] = []
        for t in range(self.trials):
            if not completed[t] and not self.config.allow_incomplete:
                raise SimulationError(
                    f"protocol did not complete within {self.config.max_rounds} rounds"
                )
            metadata = dict(self.processes[t].metadata())
            metadata["min_rank"] = int(self._trial_ranks(t).min())
            if self._loss_probability > 0:
                metadata.setdefault("dropped_messages", int(self._dropped_messages[t]))
            results.append(
                RunResult(
                    rounds=int(rounds[t]),
                    timeslots=int(self._timeslots[t]),
                    completed=bool(completed[t]),
                    n=self._n,
                    k=int(metadata.pop("k", 0)),
                    completion_rounds=dict(self._completion_rounds[t]),
                    messages_sent=int(self._messages_sent[t]),
                    helpful_messages=int(self._helpful_messages[t]),
                    metadata=metadata,
                )
            )
        return results

    # ------------------------------------------------------------------
    # Time models
    # ------------------------------------------------------------------
    def _run_synchronous(self) -> tuple[np.ndarray, np.ndarray]:
        rounds = np.zeros(self.trials, dtype=np.int64)
        completed = np.zeros(self.trials, dtype=bool)
        for t in range(self.trials):
            self._note_completions(t, 0)
        active = [t for t in range(self.trials) if not self._trial_complete(t)]
        completed[[t for t in range(self.trials) if t not in active]] = True
        round_index = 0
        while active and round_index < self.config.max_rounds:
            round_index += 1
            pending = self._collect_wakeups(active)
            self._timeslots[active] += self._n
            self._deliver_in_waves(pending)
            still_active = []
            for t in active:
                self._note_completions(t, round_index)
                if self._trial_complete(t):
                    rounds[t] = round_index
                    completed[t] = True
                else:
                    still_active.append(t)
            active = still_active
        # Trials that never finished stopped at the round limit, exactly as
        # the sequential engine reports.
        for t in active:
            rounds[t] = self.config.max_rounds
        return rounds, completed

    def _run_asynchronous(self) -> tuple[np.ndarray, np.ndarray]:
        rounds = np.zeros(self.trials, dtype=np.int64)
        completed = np.zeros(self.trials, dtype=bool)
        for t in range(self.trials):
            self._note_completions(t, 0)
        active = [t for t in range(self.trials) if not self._trial_complete(t)]
        completed[[t for t in range(self.trials) if t not in active]] = True
        max_timeslots = self.config.max_rounds * self._n
        while active:
            survivors = []
            for t in active:
                if self._timeslots[t] >= max_timeslots:
                    rounds[t] = -(-int(self._timeslots[t]) // self._n)
                else:
                    survivors.append(t)
            active = survivors
            if not active:
                break
            waves: tuple[list, list] = ([], [])
            for t in active:
                rng = self.rngs[t]
                node = self._nodes[int(rng.integers(0, self._n))]
                self._timeslots[t] += 1
                transmissions = self._wakeup(t, node)
                wave_slot = 0
                for receiver_problem, row in transmissions:
                    self._messages_sent[t] += 1
                    if (
                        self._loss_probability > 0
                        and rng.random() < self._loss_probability
                    ):
                        self._dropped_messages[t] += 1
                        continue
                    waves[wave_slot].append((receiver_problem, row, t))
                    wave_slot += 1
            for wave in waves:
                self._apply_wave(wave)
            still_active = []
            for t in active:
                round_now = -(-int(self._timeslots[t]) // self._n)
                self._note_completions(t, round_now)
                if self._trial_complete(t):
                    rounds[t] = round_now
                    completed[t] = True
                else:
                    still_active.append(t)
            active = still_active
        return rounds, completed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _seed_from_processes(self) -> None:
        """Absorb every trial decoder's initial rows into the batch state.

        Rows are grouped into depth waves — the ``d``-th stored row of every
        problem in one vectorised sweep — mirroring how deliveries are waved
        during the run, so even an all-to-all start costs ``max_rows`` sweeps
        rather than one eliminate call per node per trial.
        """
        initial_rows: dict[int, np.ndarray] = {}
        max_depth = 0
        for t, process in enumerate(self.processes):
            base = t * self._n
            for node, decoder in process.decoders.items():
                matrix = decoder.coefficient_matrix()
                if matrix.shape[0]:
                    initial_rows[base + self._pos[node]] = matrix
                    max_depth = max(max_depth, matrix.shape[0])
        for depth in range(max_depth):
            indices = [
                problem for problem, matrix in initial_rows.items()
                if matrix.shape[0] > depth
            ]
            rows = np.stack([initial_rows[problem][depth] for problem in indices])
            self._decoder.receive(rows, np.asarray(indices, dtype=np.int64))

    def _trial_ranks(self, t: int) -> np.ndarray:
        return self._decoder.ranks[t * self._n : (t + 1) * self._n]

    def _trial_complete(self, t: int) -> bool:
        return bool(np.all(self._trial_ranks(t) == self.k))

    def _note_completions(self, t: int, round_index: int) -> None:
        newly = (self._trial_ranks(t) == self.k) & ~self._noted[t]
        if newly.any():
            for pos in np.nonzero(newly)[0]:
                self._completion_rounds[t][self._nodes[pos]] = round_index
            self._noted[t][newly] = True

    def _wakeup(self, t: int, node: int) -> list[tuple[int, np.ndarray]]:
        """Replicate ``AlgebraicGossip.on_wakeup`` against the batch state.

        Returns ``(receiver_problem, coefficient_row)`` pairs; the random
        draws (partner, then sender coefficients in PUSH-then-PULL order)
        match the scalar protocol call-for-call.
        """
        rng = self.rngs[t]
        process = self.processes[t]
        partner = process.selector.partner(node, rng)
        if partner is None:
            return []
        base = t * self._n
        pos, ppos = self._pos[node], self._pos[partner]
        transmissions: list[tuple[int, np.ndarray]] = []
        if self.action in (GossipAction.PUSH, GossipAction.EXCHANGE):
            row = self._encode(base + pos, rng)
            if row is not None:
                transmissions.append((base + ppos, row))
        if self.action in (GossipAction.PULL, GossipAction.EXCHANGE):
            row = self._encode(base + ppos, rng)
            if row is not None:
                transmissions.append((base + pos, row))
        return transmissions

    def _encode(self, problem: int, rng: np.random.Generator) -> np.ndarray | None:
        """One freshly coded coefficient vector, or ``None`` at rank zero."""
        rank = int(self._decoder.ranks[problem])
        if rank == 0:
            return None
        coefficients = self.field.random_elements(rng, rank)
        return self._decoder.encode(problem, coefficients)

    def _collect_wakeups(
        self, active: list[int]
    ) -> list[tuple[int, list[tuple[int, np.ndarray]]]]:
        """Synchronous wakeup phase: all draws, no state mutation."""
        pending: list[tuple[int, list[tuple[int, np.ndarray]]]] = []
        for t in active:
            trial_pending: list[tuple[int, np.ndarray]] = []
            for node in self._nodes:
                trial_pending.extend(self._wakeup(t, node))
            pending.append((t, trial_pending))
        return pending

    def _deliver_in_waves(self, pending) -> None:
        """End-of-round delivery: loss draws in pending order, then waves."""
        queues: dict[int, list[tuple[np.ndarray, int]]] = {}
        for t, trial_pending in pending:
            rng = self.rngs[t]
            for receiver_problem, row in trial_pending:
                self._messages_sent[t] += 1
                if (
                    self._loss_probability > 0
                    and rng.random() < self._loss_probability
                ):
                    self._dropped_messages[t] += 1
                    continue
                queues.setdefault(receiver_problem, []).append((row, t))
        depth = 0
        while True:
            wave = [
                (problem, entries[depth][0], entries[depth][1])
                for problem, entries in queues.items()
                if len(entries) > depth
            ]
            if not wave:
                break
            self._apply_wave(wave)
            depth += 1

    def _apply_wave(self, wave: list[tuple[int, np.ndarray, int]]) -> None:
        """One vectorised sweep: at most one row per receiving decoder."""
        if not wave:
            return
        indices = np.fromiter((entry[0] for entry in wave), dtype=np.int64, count=len(wave))
        rows = np.stack([entry[1] for entry in wave])
        trials = np.fromiter((entry[2] for entry in wave), dtype=np.int64, count=len(wave))
        helpful = self._decoder.receive(rows, indices)
        np.add.at(self._helpful_messages, trials[helpful], 1)
