"""Vectorised batch-trial execution of TAG and spanning-tree protocols.

:class:`~repro.gossip.batch.BatchGossipEngine` covers rank-only *uniform*
algebraic gossip; the engines here extend the lockstep fast path to the
paper's headline protocol.  :class:`BatchTagEngine` runs all trials of a
:class:`~repro.protocols.tag.TagProtocol` at once: phase-1 tree construction
advances as ``trials x nodes`` arrays of informed/parent state (a
:class:`BatchSpanningTreeState`), and phase-2 parent EXCHANGEs flow through
the shared :class:`~repro.rlnc.batch.BatchDecoder` grid, one vectorised
``GF(q)`` sweep per delivery wave.  :class:`BatchSpanningTreeEngine` drives
the same tree states for spanning-tree protocols run *standalone* (the
Theorem 5 broadcast measurements).

Both engines inherit the time-model loops of
:class:`~repro.gossip.batch.BatchEngineCore`, so the odd/even wakeup
interleaving, the synchronous end-of-round delivery buffering and the
asynchronous immediate delivery match :class:`~repro.gossip.engine.GossipEngine`
driving the scalar protocol — and because every random draw (partner
selection, coding coefficients, node activations, loss) is issued per trial
in exactly the sequential order, the results are **bit-identical** to the
scalar path: same seeds give the same stopping times, message counts, tree
shapes and metadata.  ``tests/test_gossip_batch_tag.py`` asserts exactly
that across both time models, all four spanning-tree protocols and both
``keep_phase1_after_tree`` settings.

Supported spanning-tree protocols (exact types — subclasses may carry extra
state and fall back to the sequential engine):

* :class:`~repro.protocols.spanning_tree_protocols.UniformBroadcastTree`
* :class:`~repro.protocols.spanning_tree_protocols.RoundRobinBroadcastTree`
* :class:`~repro.protocols.spanning_tree_protocols.BfsOracleTree`
* :class:`~repro.protocols.is_protocol.ISSpanningTree`
"""

from __future__ import annotations

from typing import Any

import networkx as nx
import numpy as np

from ..core.config import SimulationConfig
from ..core.results import RunResult
from ..errors import SimulationError
from .batch import _RLNC, _STP, BatchEngineCore, RlncBatchMixin
from .engine import BatchRunner, GossipProcess

__all__ = [
    "BatchSpanningTreeState",
    "BatchUniformBroadcastState",
    "BatchRoundRobinBroadcastState",
    "BatchBfsOracleState",
    "BatchISState",
    "BatchTagEngine",
    "BatchSpanningTreeEngine",
    "run_tag_batch",
    "run_spanning_tree_batch",
    "tag_batch_runner",
    "spanning_tree_batch_runner",
]

# ----------------------------------------------------------------------
# Batched spanning-tree state
# ----------------------------------------------------------------------
class BatchSpanningTreeState:
    """``trials x nodes`` spanning-tree state advanced in lockstep.

    Each subclass mirrors one scalar
    :class:`~repro.protocols.spanning_tree_protocols.SpanningTreeProtocol`:
    it is initialised *from* the per-trial scalar instances (which have
    already consumed their construction-time draws, e.g. round-robin
    offsets), advances parent/informed state as stacked numpy arrays indexed
    by node *position* (``sorted(graph.nodes())`` order, matching the scalar
    protocols' neighbour ordering), and can :meth:`restore` its final state
    back into a scalar instance so that protocol metadata is produced by the
    very same code path as the sequential engine.

    The per-trial hooks (:meth:`choose_partner`, :meth:`payload`,
    :meth:`deliver`) replicate the scalar protocol's random draws
    call-for-call; only the storage layout is batched.
    """

    def __init__(
        self,
        graph: nx.Graph,
        protocols: list[Any],
        nodes: list[int],
        pos: dict[int, int],
    ) -> None:
        self.trials = len(protocols)
        self.n = len(nodes)
        self._nodes = nodes
        self._pos = pos
        self.root_pos = pos[protocols[0].root]
        #: ``parent[t, p]`` — parent position of node position ``p`` in trial
        #: ``t``, or ``-1`` while unassigned (the root stays ``-1``).
        self.parent = np.full((self.trials, self.n), -1, dtype=np.int64)
        self._unparented = np.full(self.trials, self.n - 1, dtype=np.int64)
        #: Neighbour positions per node, sorted — identical ordering to the
        #: scalar selectors' ``tuple(sorted(graph.neighbors(node)))``.
        self._nbrs = tuple(
            tuple(pos[v] for v in sorted(graph.neighbors(node))) for node in nodes
        )

    # -- queries ---------------------------------------------------------
    def parent_pos(self, t: int, p: int) -> int:
        """Parent position of node position ``p`` in trial ``t`` (-1 = none)."""
        return int(self.parent[t, p])

    def parent_mask(self, t: int) -> np.ndarray:
        """Boolean ``(n,)`` mask of nodes with an assigned parent."""
        return self.parent[t] >= 0

    def complete(self, t: int) -> bool:
        """``True`` when every non-root node of trial ``t`` has a parent."""
        return bool(self._unparented[t] == 0)

    def _assign_parent(self, t: int, receiver: int, sender: int) -> None:
        self.parent[t, receiver] = sender
        self._unparented[t] -= 1

    def _parent_map(self, t: int) -> dict[int, int]:
        """Trial ``t``'s parent assignment in node-id space."""
        return {
            self._nodes[p]: self._nodes[int(par)]
            for p, par in enumerate(self.parent[t])
            if par >= 0
        }

    # -- protocol hooks (replicating the scalar random stream) -----------
    def choose_partner(self, t: int, p: int, rng: np.random.Generator) -> int:
        """Partner position for a phase-1 step of node position ``p``."""
        raise NotImplementedError

    def payload(self, t: int, p: int) -> Any:
        """The tree-protocol message node position ``p`` sends."""
        raise NotImplementedError

    def deliver(self, t: int, receiver: int, sender: int, payload: Any) -> bool:
        """Apply a received message; return ``True`` if it changed state."""
        raise NotImplementedError

    def restore(self, protocol: Any, t: int) -> None:
        """Write trial ``t``'s final state back into the scalar ``protocol``."""
        raise NotImplementedError

    # -- shared selector steps -------------------------------------------
    def _uniform_partner(self, p: int, rng: np.random.Generator) -> int:
        neighbors = self._nbrs[p]
        return neighbors[int(rng.integers(0, len(neighbors)))]

    def _round_robin_partner(self, t: int, p: int) -> int:
        """One cyclic step of ``self._rr`` — the batch replica of
        :meth:`RoundRobinSelector.partner
        <repro.gossip.communication.RoundRobinSelector.partner>` (no draws).
        Subclasses that use it own a ``(trials, n)`` ``_rr`` position array.
        """
        neighbors = self._nbrs[p]
        index = int(self._rr[t, p]) % len(neighbors)
        self._rr[t, p] = (index + 1) % len(neighbors)
        return neighbors[index]


class _BatchBroadcastState(BatchSpanningTreeState):
    """Broadcast-based trees: parent = first informer (Section 4.1)."""

    def __init__(self, graph, protocols, nodes, pos) -> None:
        super().__init__(graph, protocols, nodes, pos)
        self.informed = np.zeros((self.trials, self.n), dtype=bool)
        for t, protocol in enumerate(protocols):
            for node in protocol._informed:
                self.informed[t, pos[node]] = True
            for node, par in protocol._parent.items():
                self.parent[t, pos[node]] = pos[par]
        self._unparented = (self.n - 1) - np.count_nonzero(self.parent >= 0, axis=1)

    def payload(self, t: int, p: int) -> bool:
        return bool(self.informed[t, p])

    def deliver(self, t: int, receiver: int, sender: int, payload: bool) -> bool:
        if payload and not self.informed[t, receiver]:
            self.informed[t, receiver] = True
            if receiver != self.root_pos:
                self._assign_parent(t, receiver, sender)
            return True
        return False

    def _informed_set(self, t: int) -> set[int]:
        return {self._nodes[p] for p in np.nonzero(self.informed[t])[0]}


class BatchUniformBroadcastState(_BatchBroadcastState):
    """Batched :class:`~repro.protocols.spanning_tree_protocols.UniformBroadcastTree`."""

    def choose_partner(self, t: int, p: int, rng: np.random.Generator) -> int:
        return self._uniform_partner(p, rng)

    def restore(self, protocol, t: int) -> None:
        protocol.load_state(self._informed_set(t), self._parent_map(t))


class BatchRoundRobinBroadcastState(_BatchBroadcastState):
    """Batched :class:`~repro.protocols.spanning_tree_protocols.RoundRobinBroadcastTree`.

    The per-node cycle positions (including the random starting offsets the
    scalar selector drew at construction) are lifted from each trial's
    protocol instance, so no draw is repeated or skipped.
    """

    def __init__(self, graph, protocols, nodes, pos) -> None:
        super().__init__(graph, protocols, nodes, pos)
        self._rr = np.zeros((self.trials, self.n), dtype=np.int64)
        for t, protocol in enumerate(protocols):
            for node, index in protocol._selector.positions().items():
                self._rr[t, pos[node]] = index

    def choose_partner(self, t: int, p: int, rng: np.random.Generator) -> int:
        return self._round_robin_partner(t, p)

    def restore(self, protocol, t: int) -> None:
        protocol.load_state(
            self._informed_set(t),
            self._parent_map(t),
            selector_positions={
                node: int(self._rr[t, p]) for p, node in enumerate(self._nodes)
            },
        )


class BatchBfsOracleState(BatchSpanningTreeState):
    """Batched :class:`~repro.protocols.spanning_tree_protocols.BfsOracleTree`.

    The tree is known from the start and identical across trials (BFS is
    deterministic for a shared graph and root), so the state is read-only:
    deliveries never change anything and the tree is always complete.
    """

    def __init__(self, graph, protocols, nodes, pos) -> None:
        super().__init__(graph, protocols, nodes, pos)
        for node, par in protocols[0]._tree.parent.items():
            self.parent[:, pos[node]] = pos[par]
        self._unparented[:] = 0

    def choose_partner(self, t: int, p: int, rng: np.random.Generator) -> int:
        parent = int(self.parent[t, p])
        if parent >= 0:
            return parent
        return self._uniform_partner(p, rng)

    def payload(self, t: int, p: int) -> bool:
        return True

    def deliver(self, t: int, receiver: int, sender: int, payload: bool) -> bool:
        return False

    def restore(self, protocol, t: int) -> None:
        """The oracle's tree never changes; nothing to write back."""


class BatchISState(BatchSpanningTreeState):
    """Batched :class:`~repro.protocols.is_protocol.ISSpanningTree`.

    The monotone heard-from bit strings become one ``trials x nodes x nodes``
    boolean array; the alternating round-robin / uniform partner steps and
    the "first message that flipped the most significant bit" parent rule
    are replicated per trial.
    """

    def __init__(self, graph, protocols, nodes, pos) -> None:
        super().__init__(graph, protocols, nodes, pos)
        # Scalar ISSpanningTree indexes bits by sorted-node order, which is
        # exactly the position space used here.
        self.bits = np.zeros((self.trials, self.n, self.n), dtype=bool)
        self._steps = np.zeros((self.trials, self.n), dtype=np.int64)
        self._rr = np.zeros((self.trials, self.n), dtype=np.int64)
        for t, protocol in enumerate(protocols):
            for node, bits in protocol._bits.items():
                self.bits[t, pos[node]] = bits
            for node, par in protocol._parent.items():
                self.parent[t, pos[node]] = pos[par]
            for node, index in protocol._round_robin.positions().items():
                self._rr[t, pos[node]] = index
            for node, count in protocol._step_count.items():
                self._steps[t, pos[node]] = count
        self._unparented = (self.n - 1) - np.count_nonzero(self.parent >= 0, axis=1)

    def choose_partner(self, t: int, p: int, rng: np.random.Generator) -> int:
        step = int(self._steps[t, p])
        self._steps[t, p] = step + 1
        if step % 2 == 0:
            return self._round_robin_partner(t, p)
        return self._uniform_partner(p, rng)

    def payload(self, t: int, p: int) -> np.ndarray:
        return self.bits[t, p].copy()

    def deliver(self, t: int, receiver: int, sender: int, payload: np.ndarray) -> bool:
        before = self.bits[t, receiver]
        had_root_bit = bool(before[self.root_pos])
        changed = bool(np.any(payload & ~before))
        if changed:
            before |= payload
        gained_root_bit = not had_root_bit and bool(before[self.root_pos])
        if gained_root_bit and receiver != self.root_pos and self.parent[t, receiver] < 0:
            self._assign_parent(t, receiver, sender)
        return changed

    def restore(self, protocol, t: int) -> None:
        protocol.load_state(
            bits={node: self.bits[t, p].copy() for p, node in enumerate(self._nodes)},
            parent=self._parent_map(t),
            step_count={node: int(self._steps[t, p]) for p, node in enumerate(self._nodes)},
            round_robin_positions={
                node: int(self._rr[t, p]) for p, node in enumerate(self._nodes)
            },
        )


def _state_class_for(protocol_type: type) -> type[BatchSpanningTreeState] | None:
    """Batch state class for an exact spanning-tree protocol type, or ``None``."""
    # Imported lazily: the protocols package imports repro.gossip at package
    # import time, so a top-level import here would be circular.
    from ..protocols.is_protocol import ISSpanningTree
    from ..protocols.spanning_tree_protocols import (
        BfsOracleTree,
        RoundRobinBroadcastTree,
        UniformBroadcastTree,
    )

    return {
        UniformBroadcastTree: BatchUniformBroadcastState,
        RoundRobinBroadcastTree: BatchRoundRobinBroadcastState,
        BfsOracleTree: BatchBfsOracleState,
        ISSpanningTree: BatchISState,
    }.get(protocol_type)


# ----------------------------------------------------------------------
# TAG batch engine
# ----------------------------------------------------------------------
class BatchTagEngine(RlncBatchMixin, BatchEngineCore):
    """Run ``T`` trials of :class:`~repro.protocols.tag.TagProtocol` in lockstep.

    Phase-1 (odd wakeups) advances the batched spanning-tree state; phase-2
    (even wakeups) EXCHANGEs freshly coded packets with the node's parent
    through the shared decoder grid.  All trials must share the spanning-tree
    protocol type, the root and the ``keep_phase1_after_tree`` setting.
    """

    def __init__(
        self,
        graph: nx.Graph,
        processes: list[GossipProcess],
        config: SimulationConfig,
        rngs: list[np.random.Generator],
    ) -> None:
        super().__init__(graph, processes, config, rngs)
        from ..protocols.tag import TagProtocol

        first = processes[0]
        state_class = None
        if type(first) is TagProtocol:
            state_class = _state_class_for(type(first.stp))
        if state_class is None:
            raise SimulationError(
                f"{type(first).__name__} (spanning tree "
                f"{type(getattr(first, 'stp', None)).__name__}) does not support "
                "the TAG batch fast path; use GossipEngine per trial instead"
            )
        for process in processes:
            if type(process) is not type(first) or type(process.stp) is not type(first.stp):
                raise SimulationError("all batched TAG trials must share the protocol types")
            if process.keep_phase1_after_tree != first.keep_phase1_after_tree:
                raise SimulationError(
                    "all batched TAG trials must share keep_phase1_after_tree"
                )
            if process.stp.root != first.stp.root:
                raise SimulationError("all batched TAG trials must share the tree root")
        self.keep_phase1 = first.keep_phase1_after_tree
        self._tree = state_class(
            graph, [process.stp for process in processes], self._nodes, self._pos
        )
        self._init_decoder_grid()
        self._wakeup_counts = np.zeros((self.trials, self._n), dtype=np.int64)
        self._total_wakeups = np.zeros(self.trials, dtype=np.int64)
        self._tree_complete_at: list[int | None] = [None] * self.trials

    def _wakeup(self, t: int, pos: int) -> list[tuple]:
        """Replicate ``TagProtocol.on_wakeup`` against the batch state."""
        rng = self.rngs[t]
        self._wakeup_counts[t, pos] += 1
        self._total_wakeups[t] += 1
        phase1 = int(self._wakeup_counts[t, pos]) % 2 == 1
        if phase1 and not self.keep_phase1 and self._tree.complete(t):
            phase1 = False
        if phase1:
            partner = self._tree.choose_partner(t, pos, rng)
            return [
                (_STP, partner, pos, self._tree.payload(t, pos)),
                (_STP, pos, partner, self._tree.payload(t, partner)),
            ]
        parent = self._tree.parent_pos(t, pos)
        if parent < 0:
            return []
        base = t * self._n
        entries: list[tuple] = []
        row = self._encode(base + pos, rng)
        if row is not None:
            entries.append((_RLNC, base + parent, row, pos))
        row = self._encode(base + parent, rng)
        if row is not None:
            entries.append((_RLNC, base + pos, row, parent))
        return entries

    def _apply_tree_payload(
        self, t: int, receiver_pos: int, sender_pos: int, payload: Any
    ) -> bool:
        changed = self._tree.deliver(t, receiver_pos, sender_pos, payload)
        # Mirrors TagProtocol.on_deliver: the completion wakeup is recorded on
        # the first *delivery* at which the tree is complete (for the BFS
        # oracle that is the very first tree payload).
        if self._tree_complete_at[t] is None and self._tree.complete(t):
            self._tree_complete_at[t] = int(self._total_wakeups[t])
        return changed

    def _trial_metadata(self, t: int) -> dict[str, Any]:
        # Write the final batch state back into the scalar process and let
        # TagProtocol.metadata() itself produce the dict — one code path for
        # both engines, so the metadata is bit-identical by construction.
        process = self.processes[t]
        self._tree.restore(process.stp, t)
        process.load_batch_outcome(
            wakeups={
                node: int(self._wakeup_counts[t, p]) for p, node in enumerate(self._nodes)
            },
            total_wakeups=int(self._total_wakeups[t]),
            tree_complete_at_wakeup=self._tree_complete_at[t],
        )
        return dict(process.metadata())


# ----------------------------------------------------------------------
# Standalone spanning-tree batch engine (Theorem 5 measurements)
# ----------------------------------------------------------------------
class BatchSpanningTreeEngine(BatchEngineCore):
    """Run ``T`` standalone spanning-tree protocol trials in lockstep.

    Mirrors :class:`~repro.protocols.spanning_tree_protocols.SpanningTreeProtocol`'s
    generic :class:`~repro.gossip.engine.GossipProcess` behaviour (EXCHANGE of
    tree payloads with the chosen partner; a node is finished once it has a
    parent, the root immediately).  No RLNC state is involved at all.
    """

    def __init__(
        self,
        graph: nx.Graph,
        processes: list[GossipProcess],
        config: SimulationConfig,
        rngs: list[np.random.Generator],
    ) -> None:
        super().__init__(graph, processes, config, rngs)
        first = processes[0]
        state_class = _state_class_for(type(first))
        if state_class is None:
            raise SimulationError(
                f"{type(first).__name__} does not support the spanning-tree "
                "batch fast path; use GossipEngine per trial instead"
            )
        for process in processes:
            if type(process) is not type(first):
                raise SimulationError("all batched trials must share the protocol type")
            if process.root != first.root:
                raise SimulationError("all batched trials must share the tree root")
        self._tree = state_class(graph, processes, self._nodes, self._pos)
        self._root_mask = np.zeros(self._n, dtype=bool)
        self._root_mask[self._tree.root_pos] = True

    def _wakeup(self, t: int, pos: int) -> list[tuple]:
        rng = self.rngs[t]
        partner = self._tree.choose_partner(t, pos, rng)
        return [
            (_STP, partner, pos, self._tree.payload(t, pos)),
            (_STP, pos, partner, self._tree.payload(t, partner)),
        ]

    def _apply_tree_payload(
        self, t: int, receiver_pos: int, sender_pos: int, payload: Any
    ) -> bool:
        return self._tree.deliver(t, receiver_pos, sender_pos, payload)

    def _finished_mask(self, t: int) -> np.ndarray:
        return self._tree.parent_mask(t) | self._root_mask

    def _trial_metadata(self, t: int) -> dict[str, Any]:
        process = self.processes[t]
        self._tree.restore(process, t)
        return dict(process.metadata())


# ----------------------------------------------------------------------
# Strategy entry points (see GossipProcess.batch_strategy)
# ----------------------------------------------------------------------
def run_tag_batch(
    graph: nx.Graph,
    processes: list[GossipProcess],
    config: SimulationConfig,
    rngs: list[np.random.Generator],
) -> list[RunResult]:
    """Batch executor declared by :meth:`TagProtocol.batch_strategy`."""
    return BatchTagEngine(graph, processes, config, rngs).run()


def run_spanning_tree_batch(
    graph: nx.Graph,
    processes: list[GossipProcess],
    config: SimulationConfig,
    rngs: list[np.random.Generator],
) -> list[RunResult]:
    """Batch executor declared by :meth:`SpanningTreeProtocol.batch_strategy`."""
    return BatchSpanningTreeEngine(graph, processes, config, rngs).run()


def tag_batch_runner(process: GossipProcess) -> BatchRunner | None:
    """The TAG batch executor for ``process``, or ``None`` if ineligible.

    Eligible processes are exactly :class:`~repro.protocols.tag.TagProtocol`
    (not a subclass, which could carry unreplicated state) composed with one
    of the supported spanning-tree protocol types.
    """
    from ..protocols.tag import TagProtocol

    if type(process) is not TagProtocol:
        return None
    if _state_class_for(type(process.stp)) is None:
        return None
    return run_tag_batch


def spanning_tree_batch_runner(process: GossipProcess) -> BatchRunner | None:
    """The standalone spanning-tree batch executor, or ``None`` if ineligible."""
    if _state_class_for(type(process)) is None:
        return None
    return run_spanning_tree_batch
