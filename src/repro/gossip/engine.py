"""The discrete-event gossip engine.

The engine is protocol-agnostic: it owns only the *time model* of Section 2
(synchronous rounds versus asynchronous timeslots) while the protocol object —
uniform algebraic gossip, TAG, a broadcast, the IS protocol, an uncoded
baseline — decides what a waking node does by implementing
:class:`GossipProcess`.

Time-model semantics
--------------------
* **Synchronous**: in every round every node wakes up exactly once.  The paper
  stipulates that "information received in the current round will be available
  to a node for sending only at the beginning of the next round"; the engine
  enforces this by buffering all deliveries of a round and applying them only
  after every node has produced its transmissions for that round.
* **Asynchronous**: at every timeslot one node chosen uniformly at random
  wakes up and its transmissions are delivered immediately.  ``n`` consecutive
  timeslots count as one round, matching the paper's accounting.

The engine reports a :class:`~repro.core.results.RunResult` with stopping time
in both rounds and timeslots, per-node completion rounds, and message /
helpful-message counters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, List

import networkx as nx
import numpy as np

from ..core.config import SimulationConfig, TimeModel
from ..core.results import RunResult
from ..errors import SimulationError
from .dynamics import NodeDynamics
from .trace import EventTrace, GossipEvent

__all__ = [
    "Transmission",
    "GossipProcess",
    "GossipEngine",
    "run_protocol",
    "BatchRunner",
]

#: Signature of a vectorised batch executor as returned by
#: :meth:`GossipProcess.batch_strategy`: it receives the shared graph, one
#: already-constructed process per trial, the shared configuration and the
#: per-trial generators, and returns one :class:`~repro.core.results.RunResult`
#: per trial — bit-identical to running :class:`GossipEngine` once per trial.
BatchRunner = Callable[
    [nx.Graph, "List[GossipProcess]", SimulationConfig, List[np.random.Generator]],
    List[RunResult],
]


@dataclass(frozen=True)
class Transmission:
    """One directed message produced by a waking node.

    ``kind`` is a protocol-assigned label recorded in traces; it has no effect
    on the engine's behaviour.
    """

    sender: int
    receiver: int
    payload: Any
    kind: str = "message"


class GossipProcess(ABC):
    """Protocol interface driven by :class:`GossipEngine`.

    A protocol is a stateful object living for one run.  The engine calls
    :meth:`on_wakeup` whenever a node activates and :meth:`on_deliver` when a
    transmission reaches its receiver (immediately in the asynchronous model,
    at the end of the round in the synchronous model).
    """

    @abstractmethod
    def on_wakeup(self, node: int, rng: np.random.Generator) -> list[Transmission]:
        """Called when ``node`` wakes up; returns the transmissions it initiates.

        For an EXCHANGE the initiating node returns both directions (its own
        packet to the partner and the partner's packet back to it); both are
        built from committed state, so the synchronous buffering semantics are
        preserved automatically.
        """

    @abstractmethod
    def on_deliver(self, receiver: int, sender: int, payload: Any) -> bool | None:
        """Apply a delivered payload; return whether it was *helpful* (or ``None``)."""

    @abstractmethod
    def is_complete(self) -> bool:
        """``True`` once the protocol's dissemination task is finished."""

    @abstractmethod
    def finished_nodes(self) -> set[int]:
        """The set of nodes that have individually completed (for statistics)."""

    def metadata(self) -> dict[str, Any]:
        """Protocol-specific extras copied into the result (default: empty)."""
        return {}

    def on_round_end(self, round_index: int) -> None:
        """Hook invoked by the engine at the end of every round.

        The default does nothing.  Observers such as
        :class:`~repro.analysis.progress.ProgressRecorder` override it (via
        wrapping) to sample per-round state — e.g. the minimum decoder rank —
        without slowing down runs that do not need it.
        """

    def on_crash(self, node: int) -> None:
        """Reset ``node``'s state at the start of a reset-churn crash.

        Only called when the configuration sets ``churn_reset``; pause-mode
        churn (the default) never touches protocol state, so the base
        implementation refuses — protocols must opt in explicitly by
        overriding (``AlgebraicGossip`` and ``TagProtocol`` reset the node's
        decoder to its initial knowledge).
        """
        raise SimulationError(
            f"{type(self).__name__} does not support churn_reset"
        )

    def supports_rank_only_batch(self) -> bool:
        """Opt in to the vectorised rank-only batch fast path.

        :class:`~repro.gossip.batch.BatchGossipEngine` runs many trials of a
        protocol at once but tracks only decoder *ranks* (no payloads), so it
        is selected automatically — via :meth:`batch_strategy` — only for
        processes that return ``True`` here.  A protocol may do so only when
        its entire observable behaviour (transmissions, helpfulness,
        completion) is a function of coefficient ranks and the random stream;
        the default is ``False``.
        """
        return False

    def batch_strategy(self) -> BatchRunner | None:
        """Return this protocol's vectorised batch executor, or ``None``.

        The batched trial runners in :mod:`repro.experiments.parallel` build
        one process per trial, ask the first for its strategy, and — when one
        is declared — hand the whole trial set to it instead of running
        :class:`GossipEngine` once per trial.  Every strategy is a *pure
        optimisation*: same per-trial generators, bit-identical results.

        Protocols declare their own executor: uniform algebraic gossip (via
        :meth:`supports_rank_only_batch`) uses the rank-only
        :class:`~repro.gossip.batch.BatchGossipEngine`; TAG returns the
        two-phase :class:`~repro.gossip.batch_tag.BatchTagEngine`; spanning
        tree protocols run standalone through
        :class:`~repro.gossip.batch_tag.BatchSpanningTreeEngine`.  The default
        covers the rank-only opt-in and returns ``None`` otherwise (sequential
        fallback).
        """
        if self.supports_rank_only_batch():
            from .batch import run_rank_only_batch

            return run_rank_only_batch
        return None


class GossipEngine:
    """Drives a :class:`GossipProcess` under a time model until completion."""

    def __init__(
        self,
        graph: nx.Graph,
        process: GossipProcess,
        config: SimulationConfig,
        rng: np.random.Generator,
        trace: EventTrace | None = None,
    ) -> None:
        if graph.number_of_nodes() < 2:
            raise SimulationError("gossip requires at least two nodes")
        if not nx.is_connected(graph):
            raise SimulationError("gossip requires a connected graph")
        self.graph = graph
        self.process = process
        self.config = config
        self.rng = rng
        self.trace = trace
        self._nodes = sorted(graph.nodes())
        self._n = len(self._nodes)
        self._pos = {node: pos for pos, node in enumerate(self._nodes)}
        self._messages_sent = 0
        self._helpful_messages = 0
        self._dropped_messages = 0
        self._churn_dropped = 0
        self._timeslot = 0
        self._completion_rounds: dict[int, int] = {}
        self._loss_probability = config.loss_probability
        self._dynamics = NodeDynamics(config, self._nodes)
        self._last_crash_round = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Run the protocol to completion (or to the ``max_rounds`` limit)."""
        if self.config.time_model is TimeModel.SYNCHRONOUS:
            rounds = self._run_synchronous()
        else:
            rounds = self._run_asynchronous()
        completed = self.process.is_complete()
        if not completed and not self.config.allow_incomplete:
            raise SimulationError(
                f"protocol did not complete within {self.config.max_rounds} rounds"
            )
        metadata = dict(self.process.metadata())
        if self._loss_probability > 0:
            metadata.setdefault("dropped_messages", self._dropped_messages)
        if self._dynamics.has_churn:
            metadata.setdefault("churn_dropped_messages", self._churn_dropped)
        return RunResult(
            rounds=rounds,
            timeslots=self._timeslot,
            completed=completed,
            n=self._n,
            k=int(metadata.pop("k", 0)),
            completion_rounds=dict(self._completion_rounds),
            messages_sent=self._messages_sent,
            helpful_messages=self._helpful_messages,
            metadata=metadata,
        )

    # ------------------------------------------------------------------
    # Time models
    # ------------------------------------------------------------------
    def _run_synchronous(self) -> int:
        round_index = 0
        self._note_completions(round_index)
        dynamics = self._dynamics
        while not self.process.is_complete():
            if round_index >= self.config.max_rounds:
                return round_index
            round_index += 1
            self._process_crashes(round_index)
            down = dynamics.down_mask(round_index) if dynamics.has_churn else None
            pending: list[Transmission] = []
            for pos, node in enumerate(self._nodes):
                if down is not None and down[pos]:
                    continue
                pending.extend(self.process.on_wakeup(node, self.rng))
            self._timeslot += self._n
            # Deliveries become visible only now: end of the round.
            for transmission in pending:
                self._deliver(transmission, round_index, down)
            self._note_completions(round_index)
            self.process.on_round_end(round_index)
        return round_index

    def _run_asynchronous(self) -> int:
        round_index = 0
        self._note_completions(round_index)
        max_timeslots = self.config.max_rounds * self._n
        dynamics = self._dynamics
        while not self.process.is_complete():
            if self._timeslot >= max_timeslots:
                return round_index
            # Round of the slot about to be played (== ceil((t+1)/n)).
            round_now = self._timeslot // self._n + 1
            self._process_crashes(round_now)
            # Memoised per round inside NodeDynamics, so per-slot is cheap.
            down = dynamics.down_mask(round_now) if dynamics.has_churn else None
            pos = dynamics.choose_wakeup(self.rng, round_now, down)
            self._timeslot += 1
            round_index = round_now
            if pos is not None:
                for transmission in self.process.on_wakeup(self._nodes[pos], self.rng):
                    self._deliver(transmission, round_index, down)
            self._note_completions(round_index)
            if self._timeslot % self._n == 0:
                self.process.on_round_end(round_index)
        return round_index

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _process_crashes(self, round_index: int) -> None:
        """Fire :meth:`GossipProcess.on_crash` for crashes starting by ``round_index``."""
        if not self._dynamics.reset_on_crash:
            return
        while self._last_crash_round < round_index:
            self._last_crash_round += 1
            for pos in self._dynamics.crashes_at(self._last_crash_round):
                node = self._nodes[pos]
                self.process.on_crash(node)
                # The wipe un-completes the node; its completion round must
                # be re-earned, not inherited from before the crash.
                self._completion_rounds.pop(node, None)

    def _deliver(
        self,
        transmission: Transmission,
        round_index: int,
        down: np.ndarray | None = None,
    ) -> None:
        self._messages_sent += 1
        # A down endpoint kills the transmission before it enters the lossy
        # channel, so churn consumes no loss-randomness.
        if down is not None and (
            down[self._pos[transmission.sender]]
            or down[self._pos[transmission.receiver]]
        ):
            self._churn_dropped += 1
            return
        if self._loss_probability > 0 and self.rng.random() < self._loss_probability:
            self._dropped_messages += 1
            return
        helpful = self.process.on_deliver(
            transmission.receiver, transmission.sender, transmission.payload
        )
        if helpful:
            self._helpful_messages += 1
        if self.trace is not None:
            self.trace.record(
                GossipEvent(
                    round_index=round_index,
                    timeslot=self._timeslot,
                    sender=transmission.sender,
                    receiver=transmission.receiver,
                    helpful=helpful,
                    kind=transmission.kind,
                )
            )

    def _note_completions(self, round_index: int) -> None:
        for node in self.process.finished_nodes():
            self._completion_rounds.setdefault(node, round_index)


def run_protocol(
    graph: nx.Graph,
    process: GossipProcess,
    config: SimulationConfig,
    rng: np.random.Generator,
    trace: EventTrace | None = None,
) -> RunResult:
    """Convenience wrapper: construct a :class:`GossipEngine` and run it."""
    return GossipEngine(graph, process, config, rng, trace).run()
