"""Optional event tracing for gossip simulations.

Traces are off by default (stopping-time experiments only need counters), but
examples and some tests enable them to inspect *what happened*: who contacted
whom, in which round, and whether the delivered packet was helpful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["GossipEvent", "EventTrace"]


@dataclass(frozen=True)
class GossipEvent:
    """One delivered transmission.

    Attributes
    ----------
    round_index:
        Round in which the delivery took effect (for the synchronous model
        deliveries are applied at the end of the round they were sent in).
    timeslot:
        Global timeslot counter at the moment of delivery.
    sender / receiver:
        Node ids.
    helpful:
        ``True`` if the delivery increased the receiver's knowledge, ``False``
        if it was redundant, ``None`` if the protocol does not track it.
    kind:
        Free-form label assigned by the protocol (e.g. ``"rlnc"``,
        ``"broadcast-token"``, ``"is-bitstring"``).
    """

    round_index: int
    timeslot: int
    sender: int
    receiver: int
    helpful: bool | None
    kind: str = "message"


@dataclass
class EventTrace:
    """Append-only list of :class:`GossipEvent` with small query helpers."""

    events: list[GossipEvent] = field(default_factory=list)
    enabled: bool = True

    def record(self, event: GossipEvent) -> None:
        """Append an event (no-op when the trace is disabled)."""
        if self.enabled:
            self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[GossipEvent]:
        return iter(self.events)

    def helpful_events(self) -> list[GossipEvent]:
        """Only the deliveries that increased the receiver's knowledge."""
        return [event for event in self.events if event.helpful]

    def events_in_round(self, round_index: int) -> list[GossipEvent]:
        """All deliveries applied in the given round."""
        return [event for event in self.events if event.round_index == round_index]

    def messages_per_round(self) -> dict[int, int]:
        """Histogram: round → number of delivered messages."""
        histogram: dict[int, int] = {}
        for event in self.events:
            histogram[event.round_index] = histogram.get(event.round_index, 0) + 1
        return histogram

    def contacts_of(self, node: int) -> list[GossipEvent]:
        """Every event in which ``node`` was the sender or the receiver."""
        return [
            event
            for event in self.events
            if event.sender == node or event.receiver == node
        ]
