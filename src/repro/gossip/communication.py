"""Gossip communication models: how a waking node picks its partner.

Section 2 of the paper defines the *gossip communication model* as the rule a
waking node uses to select the single neighbour it will contact, independent
of what is then sent.  Three models appear in the paper:

* **Uniform gossip** (Definition 1) — the partner is chosen uniformly at
  random among all neighbours.
* **Round-robin gossip** (Definition 2) — the partner is chosen according to a
  fixed cyclic list of neighbours; with a random starting point this is the
  quasirandom rumor-spreading model.
* **Fixed partner** — the partner is always the node's parent in a spanning
  tree; this is how phase 2 of TAG communicates.

Each selector exposes ``partner(node, rng) -> int | None`` and is constructed
from the graph so that the neighbour lists are fixed up front.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import networkx as nx
import numpy as np

from ..errors import SimulationError
from ..graphs.topologies import neighbor_lists

__all__ = [
    "PartnerSelector",
    "UniformSelector",
    "RoundRobinSelector",
    "FixedPartnerSelector",
]


class PartnerSelector(ABC):
    """Strategy interface for choosing the communication partner of a node."""

    @abstractmethod
    def partner(self, node: int, rng: np.random.Generator) -> int | None:
        """Return the neighbour ``node`` contacts on this wakeup (or ``None``)."""

    def reset(self) -> None:
        """Reset any internal per-run state (default: nothing to reset)."""


class UniformSelector(PartnerSelector):
    """Definition 1: partner chosen uniformly at random among the neighbours."""

    def __init__(self, graph: nx.Graph) -> None:
        # Memoized per graph instance: trial runners reuse one graph across
        # all trials of a sweep, so adjacency is built once, not per trial.
        self._neighbors = neighbor_lists(graph)
        for node, neighbors in self._neighbors.items():
            if not neighbors:
                raise SimulationError(f"node {node} has no neighbours; graph must be connected")

    def partner(self, node: int, rng: np.random.Generator) -> int:
        neighbors = self._neighbors[node]
        return neighbors[int(rng.integers(0, len(neighbors)))]


class RoundRobinSelector(PartnerSelector):
    """Definition 2: partner chosen from a fixed cyclic neighbour list.

    The starting offset of every node's cycle is chosen uniformly at random
    when the selector is created (the quasirandom rumor-spreading model of
    Doerr et al.); subsequent wakeups walk the list cyclically.
    """

    def __init__(self, graph: nx.Graph, rng: np.random.Generator | None = None) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        neighbors_map = neighbor_lists(graph)
        self._neighbors: dict[int, tuple[int, ...]] = {}
        self._initial_offset: dict[int, int] = {}
        self._position: dict[int, int] = {}
        for node in graph.nodes():
            neighbors = neighbors_map[node]
            if not neighbors:
                raise SimulationError(f"node {node} has no neighbours; graph must be connected")
            self._neighbors[node] = neighbors
            offset = int(rng.integers(0, len(neighbors)))
            self._initial_offset[node] = offset
            self._position[node] = offset

    def partner(self, node: int, rng: np.random.Generator) -> int:
        neighbors = self._neighbors[node]
        index = self._position[node] % len(neighbors)
        self._position[node] = (index + 1) % len(neighbors)
        return neighbors[index]

    def reset(self) -> None:
        self._position = dict(self._initial_offset)

    def positions(self) -> dict[int, int]:
        """Copy of the current per-node cycle positions."""
        return dict(self._position)

    def load_positions(self, positions: dict[int, int]) -> None:
        """Install per-node cycle positions.

        Used by the batch fast path to write a lockstep run's final selector
        state back into the scalar selector, so that inspection after a batch
        run sees exactly what a sequential run would have left behind.
        """
        for node, index in positions.items():
            if node not in self._position:
                raise SimulationError(f"unknown node {node} in selector positions")
            self._position[node] = int(index)


class FixedPartnerSelector(PartnerSelector):
    """Partner fixed per node (the node's parent in a spanning tree).

    Nodes without an assigned partner (the tree root, or nodes that have not
    yet joined the tree) return ``None``, meaning "stay idle this wakeup" —
    exactly the behaviour of phase 2 of TAG before a node obtains a parent.
    """

    def __init__(self, partner_map: dict[int, int] | None = None) -> None:
        self._partner: dict[int, int] = dict(partner_map or {})

    def set_partner(self, node: int, partner: int) -> None:
        """Assign (or overwrite) the fixed partner of ``node``."""
        self._partner[node] = partner

    def partner_map(self) -> dict[int, int]:
        """Copy of the current node → partner assignment."""
        return dict(self._partner)

    def partner(self, node: int, rng: np.random.Generator) -> int | None:
        return self._partner.get(node)
