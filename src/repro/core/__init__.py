"""Core simulation kernel: configuration, results and random-number streams."""

from .config import GossipAction, SimulationConfig, TimeModel
from .results import RunResult, StoppingTimeStats, aggregate_results, json_ready
from .rng import DEFAULT_SEED, RngStreams, derive_rng, derive_seed, make_rng, spawn_rngs

__all__ = [
    "GossipAction",
    "SimulationConfig",
    "TimeModel",
    "RunResult",
    "StoppingTimeStats",
    "aggregate_results",
    "json_ready",
    "DEFAULT_SEED",
    "RngStreams",
    "derive_rng",
    "derive_seed",
    "make_rng",
    "spawn_rngs",
]
