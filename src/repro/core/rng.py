"""Deterministic random-number management for simulations.

All stochastic components of the library (gossip partner selection,
asynchronous node activation, RLNC coefficient sampling, queueing service
times) draw from :class:`numpy.random.Generator` instances produced here so
that every experiment is reproducible from a single integer seed.

The central concept is a *stream*: a named, independent random generator
derived from a root seed.  Deriving the same stream name from the same root
seed always yields an identical sequence, while distinct stream names yield
statistically independent sequences.  This lets a simulation use separate
streams for, e.g., the activation schedule and the coding coefficients, so
changing one component does not perturb the randomness of another.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

import numpy as np

__all__ = [
    "DEFAULT_SEED",
    "make_rng",
    "derive_seed",
    "derive_rng",
    "spawn_rngs",
    "RngStreams",
]

#: Seed used when the caller does not supply one.  Chosen arbitrarily but
#: fixed so that "no seed" still means "reproducible".
DEFAULT_SEED = 20110123  # the arXiv submission date of the paper (2011-01-23)


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (use :data:`DEFAULT_SEED`), an integer, or an
    existing generator (returned unchanged).  Accepting an existing generator
    makes it convenient for helpers to take ``seed`` parameters that are
    either raw seeds or already-constructed generators.
    """
    if seed is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(int(seed))


def derive_seed(root_seed: int, stream: str) -> int:
    """Derive a child seed from ``root_seed`` and a ``stream`` name.

    The derivation hashes the pair so that nearby root seeds and similar
    stream names still produce unrelated child seeds.  The result fits in
    63 bits and is therefore safe to pass to :func:`numpy.random.default_rng`.
    """
    digest = hashlib.sha256(f"{root_seed}:{stream}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


def derive_rng(root_seed: int, stream: str) -> np.random.Generator:
    """Return an independent generator for the named ``stream``."""
    return np.random.default_rng(derive_seed(root_seed, stream))


def spawn_rngs(root_seed: int, count: int, prefix: str = "trial") -> Iterator[np.random.Generator]:
    """Yield ``count`` independent generators, one per repeated trial.

    The ``i``-th generator is derived from the stream ``f"{prefix}-{i}"`` so
    trials can run in any order (or in parallel) and still be reproducible.
    """
    for index in range(count):
        yield derive_rng(root_seed, f"{prefix}-{index}")


class RngStreams:
    """Bundle of named random streams sharing a single root seed.

    A simulation typically needs several independent sources of randomness.
    ``RngStreams`` hands out one generator per name, lazily, and caches it so
    repeated lookups return the same generator object (and hence continue the
    same sequence).

    Example
    -------
    >>> streams = RngStreams(seed=7)
    >>> activation = streams["activation"]
    >>> coding = streams["coding"]
    >>> activation is streams["activation"]
    True
    """

    def __init__(self, seed: int | None = None) -> None:
        self.seed = DEFAULT_SEED if seed is None else int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def __getitem__(self, stream: str) -> np.random.Generator:
        if stream not in self._cache:
            self._cache[stream] = derive_rng(self.seed, stream)
        return self._cache[stream]

    def reset(self) -> None:
        """Forget all cached generators so streams restart from scratch."""
        self._cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RngStreams(seed={self.seed}, streams={sorted(self._cache)})"
