"""Simulation configuration objects.

The paper studies gossip protocols along several orthogonal axes:

* the **time model** — synchronous rounds versus asynchronous timeslots
  (Section 2 of the paper; ``n`` timeslots are counted as one round),
* the **gossip action** — ``PUSH``, ``PULL`` or ``EXCHANGE``,
* the **communication model** — uniform neighbour selection, round-robin
  (quasirandom) selection, or a fixed partner (used on spanning trees),
* the **field size** ``q`` used by random linear network coding, and
* the **payload length** ``r`` (number of field symbols per source message).

:class:`SimulationConfig` gathers those knobs in a single immutable object so
experiments, tests and benchmarks describe a run with one value.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any

from ..errors import ConfigurationError

__all__ = ["TimeModel", "GossipAction", "SimulationConfig"]


class TimeModel(str, Enum):
    """The two time models of Section 2 of the paper."""

    #: Every node activates exactly once per round; information received in a
    #: round becomes usable only at the beginning of the next round.
    SYNCHRONOUS = "synchronous"

    #: At every timeslot a single node, chosen uniformly at random, activates.
    #: ``n`` consecutive timeslots are one round.
    ASYNCHRONOUS = "asynchronous"


class GossipAction(str, Enum):
    """Direction of information flow when a node contacts its partner."""

    #: The initiator sends to the partner.
    PUSH = "push"

    #: The initiator receives from the partner.
    PULL = "pull"

    #: Both directions; this is the variant the paper analyses.
    EXCHANGE = "exchange"


_VALID_FIELD_SIZES = frozenset({2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 17, 19, 23, 25, 27,
                                29, 31, 32, 37, 41, 43, 47, 49, 53, 59, 61, 64, 67,
                                71, 73, 79, 81, 83, 89, 97, 101, 103, 107, 109, 113,
                                121, 125, 127, 128, 131, 137, 139, 149, 151, 157,
                                163, 167, 169, 173, 179, 181, 191, 193, 197, 199,
                                211, 223, 227, 229, 233, 239, 241, 243, 251, 256})


@dataclass(frozen=True)
class SimulationConfig:
    """Immutable description of a single gossip simulation run.

    Parameters
    ----------
    field_size:
        Order ``q`` of the finite field used by RLNC.  The paper's analysis
        only requires ``q >= 2`` (helpfulness probability ``1 - 1/q``).
    payload_length:
        Number of field symbols ``r`` per source message.  The paper assumes
        ``r >> n``; for the stopping-time dynamics only the coefficient part
        matters, so the default keeps payloads short and simulations fast.
    time_model:
        Synchronous rounds or asynchronous timeslots.
    action:
        PUSH / PULL / EXCHANGE.  The paper's theorems use EXCHANGE.
    max_rounds:
        Safety limit; a simulation that has not completed after this many
        rounds raises :class:`~repro.errors.SimulationError` (or returns an
        incomplete result when ``allow_incomplete`` is set).
    allow_incomplete:
        When ``True``, hitting ``max_rounds`` yields a result flagged as
        incomplete instead of raising.  Benchmarks measuring lower-bound
        behaviour (e.g. uniform gossip on the barbell) use this.
    loss_probability:
        Probability that any individual transmission is dropped before
        delivery (independent per packet).  The paper assumes reliable links;
        this knob exists for robustness experiments — gossip protocols only
        slow down under loss, they never deliver wrong data.
    seed:
        Root seed; all randomness in the run derives from it.
    extra:
        Free-form protocol-specific options (e.g. the spanning-tree protocol
        to plug into TAG).  Stored as a tuple of key/value pairs to keep the
        dataclass hashable.
    """

    field_size: int = 16
    payload_length: int = 4
    time_model: TimeModel = TimeModel.SYNCHRONOUS
    action: GossipAction = GossipAction.EXCHANGE
    max_rounds: int = 100_000
    allow_incomplete: bool = False
    loss_probability: float = 0.0
    seed: int = 0
    extra: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.field_size < 2:
            raise ConfigurationError(
                f"field_size must be at least 2, got {self.field_size}"
            )
        if self.field_size not in _VALID_FIELD_SIZES:
            raise ConfigurationError(
                f"field_size {self.field_size} is not a supported prime power"
            )
        if self.payload_length < 1:
            raise ConfigurationError(
                f"payload_length must be positive, got {self.payload_length}"
            )
        if self.max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be positive, got {self.max_rounds}"
            )
        if not 0.0 <= self.loss_probability < 1.0:
            raise ConfigurationError(
                f"loss_probability must lie in [0, 1), got {self.loss_probability}"
            )
        if not isinstance(self.time_model, TimeModel):
            object.__setattr__(self, "time_model", TimeModel(self.time_model))
        if not isinstance(self.action, GossipAction):
            object.__setattr__(self, "action", GossipAction(self.action))

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def is_synchronous(self) -> bool:
        """``True`` when the run uses synchronous rounds."""
        return self.time_model is TimeModel.SYNCHRONOUS

    @property
    def options(self) -> dict[str, Any]:
        """Protocol-specific options as a plain dictionary."""
        return dict(self.extra)

    def with_options(self, **options: Any) -> "SimulationConfig":
        """Return a copy with ``options`` merged into :attr:`extra`."""
        merged = dict(self.extra)
        merged.update(options)
        return replace(self, extra=tuple(sorted(merged.items())))

    def replace(self, **changes: Any) -> "SimulationConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)
