"""Simulation configuration objects.

The paper studies gossip protocols along several orthogonal axes:

* the **time model** — synchronous rounds versus asynchronous timeslots
  (Section 2 of the paper; ``n`` timeslots are counted as one round),
* the **gossip action** — ``PUSH``, ``PULL`` or ``EXCHANGE``,
* the **communication model** — uniform neighbour selection, round-robin
  (quasirandom) selection, or a fixed partner (used on spanning trees),
* the **field size** ``q`` used by random linear network coding,
* the **payload length** ``r`` (number of field symbols per source message),
* **node churn** — crash/restart schedules during which a node neither wakes
  nor receives (an extension beyond the paper's static-network model), and
* **heterogeneous activation rates** — non-uniform node clocks in the
  asynchronous time model, the natural generalisation of the paper's
  uniform-timeslot model.

:class:`SimulationConfig` gathers those knobs in a single immutable object so
experiments, tests and benchmarks describe a run with one value.  The object
round-trips through :meth:`~SimulationConfig.to_dict` /
:meth:`~SimulationConfig.from_dict`, which is what lets a
:class:`~repro.scenarios.ScenarioSpec` serialise a whole scenario to JSON.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields, replace
from enum import Enum
from typing import Any

from ..errors import ConfigurationError

__all__ = ["TimeModel", "GossipAction", "ChurnEvent", "SimulationConfig"]


class TimeModel(str, Enum):
    """The two time models of Section 2 of the paper."""

    #: Every node activates exactly once per round; information received in a
    #: round becomes usable only at the beginning of the next round.
    SYNCHRONOUS = "synchronous"

    #: At every timeslot a single node, chosen uniformly at random, activates.
    #: ``n`` consecutive timeslots are one round.
    ASYNCHRONOUS = "asynchronous"


class GossipAction(str, Enum):
    """Direction of information flow when a node contacts its partner."""

    #: The initiator sends to the partner.
    PUSH = "push"

    #: The initiator receives from the partner.
    PULL = "pull"

    #: Both directions; this is the variant the paper analyses.
    EXCHANGE = "exchange"


#: One crash/restart interval: ``(node, down_round, up_round)``.  The node is
#: down for every round ``r`` with ``down_round <= r < up_round`` (rounds are
#: 1-indexed, as reported by the engines): it does not wake up, and any
#: transmission whose sender or receiver is down is dropped before delivery.
ChurnEvent = tuple[int, int, int]

_VALID_FIELD_SIZES = frozenset({2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 17, 19, 23, 25, 27,
                                29, 31, 32, 37, 41, 43, 47, 49, 53, 59, 61, 64, 67,
                                71, 73, 79, 81, 83, 89, 97, 101, 103, 107, 109, 113,
                                121, 125, 127, 128, 131, 137, 139, 149, 151, 157,
                                163, 167, 169, 173, 179, 181, 191, 193, 197, 199,
                                211, 223, 227, 229, 233, 239, 241, 243, 251, 256})


@dataclass(frozen=True)
class SimulationConfig:
    """Immutable description of a single gossip simulation run.

    Parameters
    ----------
    field_size:
        Order ``q`` of the finite field used by RLNC.  The paper's analysis
        only requires ``q >= 2`` (helpfulness probability ``1 - 1/q``).
    payload_length:
        Number of field symbols ``r`` per source message.  The paper assumes
        ``r >> n``; for the stopping-time dynamics only the coefficient part
        matters, so the default keeps payloads short and simulations fast.
    time_model:
        Synchronous rounds or asynchronous timeslots.
    action:
        PUSH / PULL / EXCHANGE.  The paper's theorems use EXCHANGE.
    max_rounds:
        Safety limit; a simulation that has not completed after this many
        rounds raises :class:`~repro.errors.SimulationError` (or returns an
        incomplete result when ``allow_incomplete`` is set).
    allow_incomplete:
        When ``True``, hitting ``max_rounds`` yields a result flagged as
        incomplete instead of raising.  Benchmarks measuring lower-bound
        behaviour (e.g. uniform gossip on the barbell) use this.
    loss_probability:
        Probability that any individual transmission is dropped before
        delivery (independent per packet).  The paper assumes reliable links;
        this knob exists for robustness experiments — gossip protocols only
        slow down under loss, they never deliver wrong data.
    seed:
        Root seed; all randomness in the run derives from it.
    churn:
        Crash/restart schedule: a tuple of :data:`ChurnEvent` triples
        ``(node, down_round, up_round)``.  While down, a node never wakes up
        and every transmission it would send or receive is dropped (counted
        separately from random loss).  Empty (the default) means the paper's
        static network.
    churn_reset:
        When ``True`` a crashing node additionally *loses its protocol
        state*: the engine calls
        :meth:`~repro.gossip.engine.GossipProcess.on_crash` at the start of
        the crash round, and protocols that support it reset the node to its
        initial knowledge.  Reset churn always runs on the sequential engine
        (the batch fast path declines it — see
        :func:`repro.gossip.batch.batch_supports_config`).
    activation_rates:
        Relative activation rates per node for the **asynchronous** time
        model, aligned with ``sorted(graph.nodes())``.  Empty (the default)
        means the paper's uniform node clocks; otherwise each timeslot
        activates node ``i`` with probability proportional to
        ``activation_rates[i]`` (restricted to currently-alive nodes under
        churn).  Rejected under the synchronous model, where every node
        wakes exactly once per round by definition.
    extra:
        Free-form protocol-specific options (e.g. the spanning-tree protocol
        to plug into TAG).  Stored as a tuple of key/value pairs to keep the
        dataclass hashable.
    """

    field_size: int = 16
    payload_length: int = 4
    time_model: TimeModel = TimeModel.SYNCHRONOUS
    action: GossipAction = GossipAction.EXCHANGE
    max_rounds: int = 100_000
    allow_incomplete: bool = False
    loss_probability: float = 0.0
    seed: int = 0
    churn: tuple[ChurnEvent, ...] = ()
    churn_reset: bool = False
    activation_rates: tuple[float, ...] = ()
    extra: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.field_size < 2:
            raise ConfigurationError(
                f"field_size must be at least 2, got {self.field_size}"
            )
        if self.field_size not in _VALID_FIELD_SIZES:
            raise ConfigurationError(
                f"field_size {self.field_size} is not a supported prime power"
            )
        if self.payload_length < 1:
            raise ConfigurationError(
                f"payload_length must be positive, got {self.payload_length}"
            )
        if self.max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be positive, got {self.max_rounds}"
            )
        if not 0.0 <= self.loss_probability < 1.0:
            raise ConfigurationError(
                f"loss_probability must lie in [0, 1), got {self.loss_probability}"
            )
        if not isinstance(self.time_model, TimeModel):
            object.__setattr__(self, "time_model", TimeModel(self.time_model))
        if not isinstance(self.action, GossipAction):
            object.__setattr__(self, "action", GossipAction(self.action))
        # Normalise the sequence-valued fields to tuples so configs built
        # from JSON lists hash and compare like hand-written ones; malformed
        # shapes surface as ConfigurationError, not a raw unpack/cast error.
        try:
            object.__setattr__(
                self,
                "churn",
                tuple((int(n), int(down), int(up)) for n, down, up in self.churn),
            )
        except (TypeError, ValueError) as error:
            raise ConfigurationError(
                f"churn must be a sequence of (node, down_round, up_round) "
                f"triples: {error}"
            ) from None
        try:
            object.__setattr__(
                self, "activation_rates", tuple(float(r) for r in self.activation_rates)
            )
        except (TypeError, ValueError) as error:
            raise ConfigurationError(
                f"activation_rates must be a sequence of numbers: {error}"
            ) from None
        # Key-sorted, deduplicated, and with JSON-decoded lists restored to
        # tuples, exactly as with_options / from_dict produce it — so
        # construction order and a JSON round trip can break neither config
        # equality nor hashability.
        object.__setattr__(
            self,
            "extra",
            tuple(
                sorted(
                    (key, tuple(value) if isinstance(value, list) else value)
                    for key, value in dict(self.extra).items()
                )
            ),
        )
        for node, down_round, up_round in self.churn:
            if node < 0:
                raise ConfigurationError(f"churn node must be non-negative, got {node}")
            if down_round < 1:
                raise ConfigurationError(
                    f"churn down_round must be >= 1 (rounds are 1-indexed), got {down_round}"
                )
            if up_round <= down_round:
                raise ConfigurationError(
                    f"churn up_round must exceed down_round, got "
                    f"({node}, {down_round}, {up_round})"
                )
        if self.churn_reset and not self.churn:
            raise ConfigurationError("churn_reset requires a non-empty churn schedule")
        for rate in self.activation_rates:
            if not rate > 0.0 or not math.isfinite(rate):
                raise ConfigurationError(
                    f"activation rates must be positive and finite, got {rate}"
                )
        if self.activation_rates and self.time_model is TimeModel.SYNCHRONOUS:
            raise ConfigurationError(
                "activation_rates apply to the asynchronous time model only "
                "(every node wakes once per round in the synchronous model)"
            )

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def is_synchronous(self) -> bool:
        """``True`` when the run uses synchronous rounds."""
        return self.time_model is TimeModel.SYNCHRONOUS

    @property
    def has_churn(self) -> bool:
        """``True`` when a crash/restart schedule is configured."""
        return bool(self.churn)

    @property
    def has_heterogeneous_rates(self) -> bool:
        """``True`` when non-uniform asynchronous activation rates are set."""
        return bool(self.activation_rates)

    @property
    def options(self) -> dict[str, Any]:
        """Protocol-specific options as a plain dictionary."""
        return dict(self.extra)

    def with_options(self, **options: Any) -> "SimulationConfig":
        """Return a copy with ``options`` merged into :attr:`extra`."""
        merged = dict(self.extra)
        merged.update(options)
        return replace(self, extra=tuple(sorted(merged.items())))

    def replace(self, **changes: Any) -> "SimulationConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Serialisation (JSON round trip for the scenario layer)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation; inverse of :meth:`from_dict`.

        Defaulted fields are omitted so serialised scenarios stay small and
        forward-compatible (a field added later with a default still loads).
        """
        defaults = SimulationConfig()
        data: dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if value == getattr(defaults, spec_field.name):
                continue
            if isinstance(value, Enum):
                value = value.value
            elif spec_field.name == "churn":
                value = [list(event) for event in value]
            elif spec_field.name == "activation_rates":
                value = list(value)
            elif spec_field.name == "extra":
                value = dict(value)
            data[spec_field.name] = value
        return data

    @classmethod
    def from_dict(cls, data: "dict[str, Any]") -> "SimulationConfig":
        """Rebuild a config from :meth:`to_dict` output (extra keys rejected)."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown SimulationConfig fields {sorted(unknown)}; known: {sorted(known)}"
            )
        kwargs = dict(data)
        if "churn" in kwargs:
            kwargs["churn"] = tuple(tuple(event) for event in kwargs["churn"])
        if "activation_rates" in kwargs:
            kwargs["activation_rates"] = tuple(kwargs["activation_rates"])
        if "extra" in kwargs:
            kwargs["extra"] = tuple(sorted(dict(kwargs["extra"]).items()))
        return cls(**kwargs)
