"""Result objects produced by gossip and queueing simulations.

The central quantity of the paper is the *stopping time* of a protocol: the
number of rounds (synchronous model) or timeslots (asynchronous model, with
``n`` timeslots per round) until every node has learned all ``k`` messages.
:class:`RunResult` records that, together with enough auxiliary counters to
reason about message complexity, and :class:`StoppingTimeStats` aggregates
repeated seeded trials into the "with high probability" statistics the paper's
bounds are stated for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..errors import AnalysisError

__all__ = ["RunResult", "StoppingTimeStats", "aggregate_results"]


@dataclass(frozen=True)
class RunResult:
    """Outcome of a single protocol execution.

    Attributes
    ----------
    rounds:
        Number of rounds elapsed when the protocol stopped.  In the
        asynchronous model this is ``ceil(timeslots / n)``.
    timeslots:
        Number of timeslots elapsed (equals ``rounds * n`` in the synchronous
        model, where each round is accounted as ``n`` timeslots).
    completed:
        ``True`` when every node finished; ``False`` when the run hit the
        ``max_rounds`` safety limit with ``allow_incomplete=True``.
    n:
        Number of nodes in the graph.
    k:
        Number of source messages disseminated.
    completion_rounds:
        Mapping from node id to the round at which that node first reached
        full rank (or first held all messages, for uncoded baselines).  Nodes
        that never finished are absent.
    messages_sent:
        Total packets transmitted over the run (both directions of an
        EXCHANGE count as two packets).
    helpful_messages:
        Number of transmitted packets that increased the receiver's rank
        (Definition 3 of the paper).
    metadata:
        Free-form extra information recorded by the protocol (for example the
        spanning-tree depth in a TAG run, or the round at which phase 1
        finished).
    """

    rounds: int
    timeslots: int
    completed: bool
    n: int
    k: int
    completion_rounds: Mapping[int, int] = field(default_factory=dict)
    messages_sent: int = 0
    helpful_messages: int = 0
    metadata: Mapping[str, object] = field(default_factory=dict)

    @property
    def last_completion_round(self) -> int | None:
        """Round at which the slowest node finished, if all nodes finished."""
        if not self.completed or not self.completion_rounds:
            return None
        return max(self.completion_rounds.values())

    @property
    def helpful_fraction(self) -> float:
        """Fraction of transmitted packets that were helpful (0 when none sent)."""
        if self.messages_sent == 0:
            return 0.0
        return self.helpful_messages / self.messages_sent

    def summary(self) -> str:
        """One-line human-readable summary used by examples and reports."""
        status = "completed" if self.completed else "INCOMPLETE"
        return (
            f"{status} after {self.rounds} rounds ({self.timeslots} timeslots); "
            f"n={self.n}, k={self.k}, messages={self.messages_sent}, "
            f"helpful={self.helpful_messages}"
        )


@dataclass(frozen=True)
class StoppingTimeStats:
    """Aggregate statistics of the stopping time over repeated trials.

    The paper states bounds that hold *with high probability* (probability at
    least ``1 - O(1/n)``).  Empirically we approximate that regime with upper
    quantiles of the observed stopping-time distribution over independent
    seeded trials.
    """

    samples: tuple[float, ...]
    incomplete_trials: int = 0

    def __post_init__(self) -> None:
        if not self.samples:
            raise AnalysisError("StoppingTimeStats requires at least one sample")

    @property
    def trials(self) -> int:
        """Number of completed trials that contributed a sample."""
        return len(self.samples)

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        if len(self.samples) == 1:
            return 0.0
        return float(np.std(self.samples, ddof=1))

    @property
    def minimum(self) -> float:
        return float(np.min(self.samples))

    @property
    def maximum(self) -> float:
        return float(np.max(self.samples))

    @property
    def median(self) -> float:
        return float(np.median(self.samples))

    def quantile(self, q: float) -> float:
        """Return the ``q``-quantile (``0 <= q <= 1``) of the samples."""
        if not 0.0 <= q <= 1.0:
            raise AnalysisError(f"quantile must lie in [0, 1], got {q}")
        return float(np.quantile(self.samples, q))

    @property
    def whp(self) -> float:
        """The 95th percentile, used as the empirical 'w.h.p.' stopping time."""
        return self.quantile(0.95)

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        return self.std / math.sqrt(self.trials)

    def summary(self) -> str:
        return (
            f"mean={self.mean:.1f} ± {self.stderr:.1f}, median={self.median:.1f}, "
            f"p95={self.whp:.1f}, max={self.maximum:.1f} over {self.trials} trials"
            + (f" ({self.incomplete_trials} incomplete)" if self.incomplete_trials else "")
        )


def aggregate_results(
    results: Iterable[RunResult], *, use_rounds: bool = True
) -> StoppingTimeStats:
    """Collapse a collection of :class:`RunResult` into stopping-time stats.

    Parameters
    ----------
    results:
        The per-trial results.
    use_rounds:
        When ``True`` (default) the statistic is the round count; otherwise
        the timeslot count is used.  The paper's bounds are stated in rounds
        for both time models, so rounds are the default unit everywhere.
    """
    samples: list[float] = []
    incomplete = 0
    for result in results:
        if result.completed:
            samples.append(float(result.rounds if use_rounds else result.timeslots))
        else:
            incomplete += 1
    if not samples:
        raise AnalysisError(
            "no completed trials to aggregate; "
            f"{incomplete} trials hit the round limit"
        )
    return StoppingTimeStats(samples=tuple(samples), incomplete_trials=incomplete)
