"""Result objects produced by gossip and queueing simulations.

The central quantity of the paper is the *stopping time* of a protocol: the
number of rounds (synchronous model) or timeslots (asynchronous model, with
``n`` timeslots per round) until every node has learned all ``k`` messages.
:class:`RunResult` records that, together with enough auxiliary counters to
reason about message complexity, and :class:`StoppingTimeStats` aggregates
repeated seeded trials into the "with high probability" statistics the paper's
bounds are stated for.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..errors import AnalysisError

__all__ = ["RunResult", "StoppingTimeStats", "aggregate_results", "json_ready"]


def json_ready(value: Any) -> Any:
    """Deep-normalise ``value`` to plain JSON-native Python types.

    Numpy scalars become ``int``/``float``/``bool``, arrays become nested
    lists, tuples become lists and mapping keys become strings — exactly the
    shape ``json.loads(json.dumps(value))`` would produce, so a value that
    went through this function round-trips through JSON *unchanged* (equality,
    not just approximation).  Used by :meth:`RunResult.__post_init__` so that
    protocol metadata written by numpy-heavy engines (``np.int64`` counters,
    boolean masks, ...) never leaks non-serialisable types into results.
    """
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [json_ready(item) for item in value.tolist()]
    if isinstance(value, Mapping):
        return {str(key): json_ready(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_ready(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise AnalysisError(
        f"cannot normalise {type(value).__name__} value {value!r} for JSON"
    )


@dataclass(frozen=True)
class RunResult:
    """Outcome of a single protocol execution.

    Attributes
    ----------
    rounds:
        Number of rounds elapsed when the protocol stopped.  In the
        asynchronous model this is ``ceil(timeslots / n)``.
    timeslots:
        Number of timeslots elapsed (equals ``rounds * n`` in the synchronous
        model, where each round is accounted as ``n`` timeslots).
    completed:
        ``True`` when every node finished; ``False`` when the run hit the
        ``max_rounds`` safety limit with ``allow_incomplete=True``.
    n:
        Number of nodes in the graph.
    k:
        Number of source messages disseminated.
    completion_rounds:
        Mapping from node id to the round at which that node first reached
        full rank (or first held all messages, for uncoded baselines).  Nodes
        that never finished are absent.
    messages_sent:
        Total packets transmitted over the run (both directions of an
        EXCHANGE count as two packets).
    helpful_messages:
        Number of transmitted packets that increased the receiver's rank
        (Definition 3 of the paper).
    metadata:
        Free-form extra information recorded by the protocol (for example the
        spanning-tree depth in a TAG run, or the round at which phase 1
        finished).  Values must be JSON-representable: numpy scalars/arrays,
        tuples and nested mappings are normalised to plain Python types at
        construction (see :func:`json_ready`), anything else — arbitrary
        objects, sets — raises :class:`~repro.errors.AnalysisError`.  The
        normalisation is what makes results serialise losslessly into the
        persistent result store.
    """

    rounds: int
    timeslots: int
    completed: bool
    n: int
    k: int
    completion_rounds: Mapping[int, int] = field(default_factory=dict)
    messages_sent: int = 0
    helpful_messages: int = 0
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Normalise every field to plain Python types at construction time.
        # Engines assemble results from numpy state, and np.int64 values that
        # leak into metadata or completion_rounds would compare equal to a
        # fresh run but serialise differently — the result store requires the
        # JSON round trip to be exact (see to_dict / from_dict).
        for name in ("rounds", "timeslots", "n", "k", "messages_sent", "helpful_messages"):
            object.__setattr__(self, name, int(getattr(self, name)))
        object.__setattr__(self, "completed", bool(self.completed))
        object.__setattr__(
            self,
            "completion_rounds",
            {int(node): int(round_) for node, round_ in self.completion_rounds.items()},
        )
        object.__setattr__(self, "metadata", json_ready(dict(self.metadata)))

    # ------------------------------------------------------------------
    # Serialisation (lossless JSON round trip, used by the result store)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation; exact inverse of :meth:`from_dict`.

        ``completion_rounds`` keys become strings (JSON object keys always
        are); :meth:`from_dict` restores them to ``int``, so
        ``RunResult.from_dict(r.to_dict()) == r`` holds exactly — including
        through an actual ``json.dumps``/``json.loads`` round trip, because
        ``__post_init__`` already normalised every value to JSON-native types.
        """
        return {
            "rounds": self.rounds,
            "timeslots": self.timeslots,
            "completed": self.completed,
            "n": self.n,
            "k": self.k,
            "completion_rounds": {
                str(node): round_ for node, round_ in self.completion_rounds.items()
            },
            "messages_sent": self.messages_sent,
            "helpful_messages": self.helpful_messages,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output (extra keys rejected)."""
        known = {result_field.name for result_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise AnalysisError(
                f"unknown RunResult fields {sorted(unknown)}; known: {sorted(known)}"
            )
        kwargs = dict(data)
        kwargs["completion_rounds"] = {
            int(node): round_
            for node, round_ in dict(kwargs.get("completion_rounds", {})).items()
        }
        return cls(**kwargs)

    def to_json(self, *, indent: int | None = None) -> str:
        """Serialise to a JSON document (compact by default, for JSONL shards)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        """Rebuild a result from :meth:`to_json` output."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise AnalysisError("a RunResult JSON document must be an object")
        return cls.from_dict(data)

    @property
    def last_completion_round(self) -> int | None:
        """Round at which the slowest node finished, if all nodes finished."""
        if not self.completed or not self.completion_rounds:
            return None
        return max(self.completion_rounds.values())

    @property
    def helpful_fraction(self) -> float:
        """Fraction of transmitted packets that were helpful (0 when none sent)."""
        if self.messages_sent == 0:
            return 0.0
        return self.helpful_messages / self.messages_sent

    def summary(self) -> str:
        """One-line human-readable summary used by examples and reports."""
        status = "completed" if self.completed else "INCOMPLETE"
        return (
            f"{status} after {self.rounds} rounds ({self.timeslots} timeslots); "
            f"n={self.n}, k={self.k}, messages={self.messages_sent}, "
            f"helpful={self.helpful_messages}"
        )


@dataclass(frozen=True)
class StoppingTimeStats:
    """Aggregate statistics of the stopping time over repeated trials.

    The paper states bounds that hold *with high probability* (probability at
    least ``1 - O(1/n)``).  Empirically we approximate that regime with upper
    quantiles of the observed stopping-time distribution over independent
    seeded trials.
    """

    samples: tuple[float, ...]
    incomplete_trials: int = 0

    def __post_init__(self) -> None:
        if not self.samples:
            raise AnalysisError("StoppingTimeStats requires at least one sample")

    @property
    def trials(self) -> int:
        """Number of completed trials that contributed a sample."""
        return len(self.samples)

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        if len(self.samples) == 1:
            return 0.0
        return float(np.std(self.samples, ddof=1))

    @property
    def minimum(self) -> float:
        return float(np.min(self.samples))

    @property
    def maximum(self) -> float:
        return float(np.max(self.samples))

    @property
    def median(self) -> float:
        return float(np.median(self.samples))

    def quantile(self, q: float) -> float:
        """Return the ``q``-quantile (``0 <= q <= 1``) of the samples."""
        if not 0.0 <= q <= 1.0:
            raise AnalysisError(f"quantile must lie in [0, 1], got {q}")
        return float(np.quantile(self.samples, q))

    @property
    def whp(self) -> float:
        """The 95th percentile, used as the empirical 'w.h.p.' stopping time."""
        return self.quantile(0.95)

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        return self.std / math.sqrt(self.trials)

    def summary(self) -> str:
        return (
            f"mean={self.mean:.1f} ± {self.stderr:.1f}, median={self.median:.1f}, "
            f"p95={self.whp:.1f}, max={self.maximum:.1f} over {self.trials} trials"
            + (f" ({self.incomplete_trials} incomplete)" if self.incomplete_trials else "")
        )


def aggregate_results(
    results: Iterable[RunResult], *, use_rounds: bool = True
) -> StoppingTimeStats:
    """Collapse a collection of :class:`RunResult` into stopping-time stats.

    Parameters
    ----------
    results:
        The per-trial results.
    use_rounds:
        When ``True`` (default) the statistic is the round count; otherwise
        the timeslot count is used.  The paper's bounds are stated in rounds
        for both time models, so rounds are the default unit everywhere.
    """
    samples: list[float] = []
    incomplete = 0
    for result in results:
        if result.completed:
            samples.append(float(result.rounds if use_rounds else result.timeslots))
        else:
            incomplete += 1
    if not samples:
        raise AnalysisError(
            "no completed trials to aggregate; "
            f"{incomplete} trials hit the round limit"
        )
    return StoppingTimeStats(samples=tuple(samples), incomplete_trials=incomplete)
