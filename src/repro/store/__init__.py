"""Persistent content-addressed result store.

:class:`ResultStore` archives per-trial :class:`~repro.core.RunResult`
records keyed by ``(ScenarioSpec fingerprint, root seed, trial index)`` in
append-only JSONL shards.  The trial runners, the sweep runner and the CLI
read *through* the store — only missing trials are computed — which makes
interrupted sweeps resumable and repeated sweeps free, with bit-identical
aggregates.  See :mod:`repro.store.result_store` and ``docs/result_store.md``
for the layout, concurrency and integrity semantics.
"""

from .result_store import (
    ResultStore,
    StoreRecord,
    StoreSnapshot,
    diff_snapshots,
    iter_records,
    load_snapshot,
    summarize_result,
)

__all__ = [
    "ResultStore",
    "StoreRecord",
    "StoreSnapshot",
    "diff_snapshots",
    "iter_records",
    "load_snapshot",
    "summarize_result",
]
