"""Persistent, content-addressed storage of per-trial simulation results.

Every Monte Carlo quantity in this repository is an aggregate over
independent seeded trials, and every trial is fully determined by three
values: the workload (a :class:`~repro.scenarios.ScenarioSpec`, addressed by
:meth:`~repro.scenarios.ScenarioSpec.fingerprint`), the root seed the trial
streams derive from, and the trial index.  :class:`ResultStore` exploits that
determinism: it is an append-only, deduplicated archive of
``(fingerprint, seed, trial) -> RunResult`` records that the trial runners
(:mod:`repro.experiments.parallel`), the sweep runner
(:func:`repro.analysis.sweep.run_sweep`) and the CLI read **through** — only
the pairs not already present are computed, so an interrupted sweep resumes
where it stopped and a repeated sweep costs no simulation time at all, with
bit-identical aggregates either way.

Layout
------
A store is a directory::

    <root>/shards/<fp[:2]>/<fp>.jsonl

with one JSONL shard per workload fingerprint.  Each shard starts with a
``spec`` record (the workload's canonical JSON, so shards are
self-describing) followed by one ``result`` record per cached trial.  Large
asymptotic sweeps archive ``summary`` records instead — just the stopping
time and completion flag (see :func:`summarize_result`), a few dozen bytes
per trial regardless of ``n``, written through
:meth:`ResultStore.put_summaries` and aggregated by
:meth:`ResultStore.aggregate` interchangeably with full records.  Shards
are **append-only**: a record is one ``os.write`` to a file opened with
``O_APPEND``, which POSIX keeps atomic for concurrent writers — two processes
filling the same store interleave whole lines, never torn ones.  Duplicate
records (two writers racing on the same trial, whose results are identical by
determinism) are collapsed on read, first record wins; :meth:`ResultStore.gc`
compacts them away.

Integrity
---------
A newline-terminated line that does not parse, is not a JSON object, has an
unknown ``kind`` or carries a fingerprint that contradicts its shard raises
:class:`~repro.errors.StoreError` naming the file and line.  A final
*unterminated* line is different: it is the signature of a writer killed
mid-append, and is truncated away on the next load (counted in
:attr:`ResultStore.last_load_dropped_partial`; the truncation only happens
while the file has not grown since it was read) so that a crashed sweep can
always resume from its own store and later appends start on a clean line.
"""

from __future__ import annotations

import contextlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from ..core.results import RunResult, StoppingTimeStats
from ..errors import AnalysisError, ReproError, StoreError

__all__ = [
    "ResultStore",
    "StoreRecord",
    "StoreSnapshot",
    "iter_records",
    "load_snapshot",
    "diff_snapshots",
    "summarize_result",
]

#: Format tag written into export headers (and checked when reading them).
EXPORT_FORMAT = "repro-result-store-export/v1"

#: The exact keys of a streaming summary payload.  Deliberately tiny and
#: strictly deterministic: everything here is a pure function of
#: ``(fingerprint, seed, trial)``, so summary records obey the same
#: conflict-on-divergence rule as full results.
SUMMARY_KEYS = ("completed", "k", "n", "rounds", "timeslots")


def summarize_result(result: RunResult) -> dict[str, Any]:
    """Project a :class:`~repro.core.results.RunResult` to its summary payload.

    The projection keeps exactly what stopping-time aggregation consumes
    (``rounds``/``timeslots``/``completed``) plus the workload size for
    self-description — no completion-round maps, message counters or
    metadata, so a 10^5-trial shard at ``n = 10^6`` stays a few MiB.
    """
    return {
        "completed": result.completed,
        "k": result.k,
        "n": result.n,
        "rounds": result.rounds,
        "timeslots": result.timeslots,
    }


def _project_summary(payload: Mapping[str, Any]) -> dict[str, Any]:
    """The summary projection of a stored full-result payload."""
    return {key: payload[key] for key in SUMMARY_KEYS if key in payload}


@dataclass(frozen=True)
class StoreRecord:
    """One parsed store line: a ``spec`` header, a ``result`` or a ``summary``."""

    kind: str
    fingerprint: str
    seed: int | None = None
    trial: int | None = None
    payload: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class _Shard:
    """In-memory image of one fingerprint's shard."""

    spec: dict[str, Any] | None = None
    results: dict[tuple[int, int], dict[str, Any]] = field(default_factory=dict)
    summaries: dict[tuple[int, int], dict[str, Any]] = field(default_factory=dict)
    raw_records: int = 0
    dropped_partial: bool = False


def _parse_record(line: str, *, source: str, line_number: int) -> StoreRecord:
    """Parse one committed JSONL line into a :class:`StoreRecord`."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as error:
        raise StoreError(
            f"{source}:{line_number}: corrupt store record (not valid JSON: {error})"
        ) from None
    if not isinstance(data, dict):
        raise StoreError(
            f"{source}:{line_number}: corrupt store record (expected an object, "
            f"got {type(data).__name__})"
        )
    kind = data.get("kind")
    if kind == "header":
        if data.get("format") != EXPORT_FORMAT:
            raise StoreError(
                f"{source}:{line_number}: unsupported export format "
                f"{data.get('format')!r} (expected {EXPORT_FORMAT!r})"
            )
        return StoreRecord(kind="header", fingerprint="")
    if kind == "spec":
        fingerprint = data.get("fingerprint")
        spec = data.get("spec")
        if not isinstance(fingerprint, str) or not isinstance(spec, dict):
            raise StoreError(
                f"{source}:{line_number}: corrupt spec record "
                "(needs string 'fingerprint' and object 'spec')"
            )
        return StoreRecord(kind="spec", fingerprint=fingerprint, payload=spec)
    if kind == "result":
        fingerprint = data.get("fingerprint")
        seed = data.get("seed")
        trial = data.get("trial")
        result = data.get("result")
        if (
            not isinstance(fingerprint, str)
            or not isinstance(seed, int)
            or not isinstance(trial, int)
            or not isinstance(result, dict)
        ):
            raise StoreError(
                f"{source}:{line_number}: corrupt result record (needs string "
                "'fingerprint', integer 'seed' and 'trial', object 'result')"
            )
        return StoreRecord(
            kind="result", fingerprint=fingerprint, seed=seed, trial=trial, payload=result
        )
    if kind == "summary":
        fingerprint = data.get("fingerprint")
        seed = data.get("seed")
        trial = data.get("trial")
        summary = data.get("summary")
        if (
            not isinstance(fingerprint, str)
            or not isinstance(seed, int)
            or not isinstance(trial, int)
            or not isinstance(summary, dict)
        ):
            raise StoreError(
                f"{source}:{line_number}: corrupt summary record (needs string "
                "'fingerprint', integer 'seed' and 'trial', object 'summary')"
            )
        return StoreRecord(
            kind="summary", fingerprint=fingerprint, seed=seed, trial=trial, payload=summary
        )
    raise StoreError(
        f"{source}:{line_number}: corrupt store record (unknown kind {kind!r})"
    )


def _parse_lines(text: str, *, source: str) -> tuple[list[StoreRecord], bool]:
    """Parse a shard/export body; returns records and a dropped-partial flag.

    A trailing chunk without a terminating newline is an interrupted append
    (the writer died mid-line): it is dropped rather than treated as
    corruption, so resuming against a killed run's store always works.
    """
    records: list[StoreRecord] = []
    dropped_partial = False
    lines = text.split("\n")
    if lines and lines[-1] != "":
        dropped_partial = True
    committed = lines[:-1]
    for number, line in enumerate(committed, start=1):
        if not line.strip():
            continue
        records.append(_parse_record(line, source=source, line_number=number))
    return records, dropped_partial


def iter_records(path: "str | Path") -> Iterator[StoreRecord]:
    """Iterate the records of one shard or export file (header lines skipped)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise StoreError(f"cannot read store file {path}: {error}") from None
    records, _ = _parse_lines(text, source=str(path))
    for record in records:
        if record.kind != "header":
            yield record


@dataclass
class StoreSnapshot:
    """A read-only image of store contents, keyed by fingerprint.

    ``results[fingerprint]`` maps ``(seed, trial)`` to the raw result
    dictionary, ``summaries[fingerprint]`` to the raw streaming-summary
    payloads; ``specs[fingerprint]`` holds the workload's canonical JSON
    when a spec header was present.  Built by :func:`load_snapshot` from
    either a store directory or an export file — the shape the CLI's
    ``store diff`` compares.
    """

    specs: dict[str, dict[str, Any]] = field(default_factory=dict)
    results: dict[str, dict[tuple[int, int], dict[str, Any]]] = field(default_factory=dict)
    summaries: dict[str, dict[tuple[int, int], dict[str, Any]]] = field(default_factory=dict)

    def add(self, record: StoreRecord) -> None:
        if record.kind == "spec":
            self.specs.setdefault(record.fingerprint, dict(record.payload))
        elif record.kind == "result":
            bucket = self.results.setdefault(record.fingerprint, {})
            bucket.setdefault((record.seed, record.trial), dict(record.payload))
        elif record.kind == "summary":
            bucket = self.summaries.setdefault(record.fingerprint, {})
            bucket.setdefault((record.seed, record.trial), dict(record.payload))

    @property
    def trial_count(self) -> int:
        return sum(len(bucket) for bucket in self.results.values()) + sum(
            len(bucket) for bucket in self.summaries.values()
        )


def load_snapshot(path: "str | Path") -> StoreSnapshot:
    """Load a store directory *or* an export file into a :class:`StoreSnapshot`.

    A directory must actually look like a store (carry a ``shards/``
    subdirectory): a mistyped path pointing at some unrelated existing
    directory raises instead of quietly reading as an empty snapshot —
    ``store diff`` against an empty "store" would otherwise always succeed.
    """
    path = Path(path)
    snapshot = StoreSnapshot()
    if path.is_dir():
        if not (path / "shards").is_dir():
            raise StoreError(
                f"{path} is not a result store (no shards/ directory) — "
                "pass a store directory or an export file"
            )
        # Pure inspection: never modify (repair) the files being read.
        store = ResultStore(path, create=False, repair=False)
        for fingerprint in store.fingerprints():
            shard = store._load(fingerprint)
            if shard.spec is not None:
                snapshot.specs[fingerprint] = dict(shard.spec)
            snapshot.results[fingerprint] = {
                key: dict(value) for key, value in shard.results.items()
            }
            if shard.summaries:
                snapshot.summaries[fingerprint] = {
                    key: dict(value) for key, value in shard.summaries.items()
                }
        return snapshot
    for record in iter_records(path):
        snapshot.add(record)
    return snapshot


def diff_snapshots(left: StoreSnapshot, right: StoreSnapshot) -> dict[str, Any]:
    """Compare two snapshots record-for-record.

    Returns a report dictionary: fingerprints (with trial counts) present on
    one side only, trial keys present on one side only for shared
    fingerprints, the ``(fingerprint, seed, trial)`` triples whose stored
    results *differ* (identical seeded trials must never differ — a non-empty
    list signals non-determinism or corruption), and the count of identical
    shared records.
    """
    # Full results and streaming summaries are compared in one unified view:
    # per fingerprint, records keyed by (kind, seed, trial), so a store that
    # archived a workload through put_summaries diffs against one that
    # archived it through put_many as "trials only on one side" rather than
    # as spurious payload divergence.
    def _records(snapshot: StoreSnapshot) -> dict[str, dict[tuple[str, int, int], dict[str, Any]]]:
        merged: dict[str, dict[tuple[str, int, int], dict[str, Any]]] = {}
        for fp, bucket in snapshot.results.items():
            view = merged.setdefault(fp, {})
            for (seed, trial), payload in bucket.items():
                view[("result", seed, trial)] = payload
        for fp, bucket in snapshot.summaries.items():
            view = merged.setdefault(fp, {})
            for (seed, trial), payload in bucket.items():
                view[("summary", seed, trial)] = payload
        return merged

    left_records = _records(left)
    right_records = _records(right)
    only_left = {
        fp: len(bucket) for fp, bucket in left_records.items() if fp not in right_records
    }
    only_right = {
        fp: len(bucket) for fp, bucket in right_records.items() if fp not in left_records
    }
    differing: list[tuple[str, int, int]] = []
    trials_only_left: list[tuple[str, int, int]] = []
    trials_only_right: list[tuple[str, int, int]] = []
    identical = 0
    for fp in sorted(set(left_records) & set(right_records)):
        left_bucket = left_records[fp]
        right_bucket = right_records[fp]
        for key in sorted(set(left_bucket) | set(right_bucket)):
            triple = (fp, key[1], key[2])
            if key not in right_bucket:
                trials_only_left.append(triple)
            elif key not in left_bucket:
                trials_only_right.append(triple)
            elif left_bucket[key] != right_bucket[key]:
                differing.append(triple)
            else:
                identical += 1
    return {
        "only_left": only_left,
        "only_right": only_right,
        "trials_only_left": trials_only_left,
        "trials_only_right": trials_only_right,
        "differing": differing,
        "identical": identical,
    }


class ResultStore:
    """Append-only, content-addressed archive of per-trial results.

    Parameters
    ----------
    root:
        Store directory (created unless ``create=False``).
    create:
        When ``False``, a missing directory raises :class:`StoreError`
        instead of being created — the read-only CLI commands use this so a
        typo'd path fails loudly.
    repair:
        When ``False``, loading a shard with a trailing half-record skips
        the fragment in memory but never truncates it on disk — pure
        inspection (``store ls``/``show``/``diff``, :func:`load_snapshot`)
        must not modify the files it reads.  Writers keep the default
        (``True``): they repair before appending so the fragment cannot
        merge into a new record.

    The cache-hit counters (:attr:`hits`, :attr:`misses`, :attr:`puts`) are
    per-instance and start at zero, so a caller can assert "this invocation
    computed nothing new" with ``store.puts == 0`` after a fully-cached run.

    Workload arguments (``spec_or_fingerprint``) accept either a
    :class:`~repro.scenarios.ScenarioSpec` or a fingerprint string; the trial
    key's ``seed`` defaults to the spec's own root seed when a spec is given.

    Examples
    --------
    Runners read *through* a store: trial records are keyed by
    ``(spec fingerprint, root seed, trial index)``, so only the missing
    indices of a plan are ever computed:

    >>> import tempfile
    >>> from repro.scenarios import ScenarioSpec
    >>> spec = ScenarioSpec(topology="ring", n=8, k=2, trials=2, seed=1)
    >>> with tempfile.TemporaryDirectory() as root:
    ...     store = ResultStore(root)
    ...     first = spec.materialize().run_single(store=store)   # computes
    ...     cached = spec.materialize().run_single(store=store)  # cache hit
    ...     (first == cached, store.puts, store.hits, store.missing_trials(spec))
    (True, 1, 1, [1])

    Asymptotic sweeps at large ``n`` archive *streaming summary* records
    instead — a constant-size stopping-time payload per trial — and
    :meth:`aggregate` consumes either kind:

    >>> summary = {"completed": True, "k": 2, "n": 8, "rounds": 7, "timeslots": 7}
    >>> with tempfile.TemporaryDirectory() as root:
    ...     store = ResultStore(root)
    ...     new = store.put_summaries(spec, {0: summary, 1: summary})
    ...     (new, store.missing_summary_trials(spec), round(store.aggregate(spec).mean, 1))
    (2, [], 7.0)
    """

    def __init__(
        self, root: "str | Path", *, create: bool = True, repair: bool = True
    ) -> None:
        self.root = Path(root)
        if self.root.is_dir() and not create and not (self.root / "shards").is_dir():
            # Read-only opens must not treat an arbitrary existing directory
            # (a typo'd --store path) as an empty store.
            raise StoreError(
                f"{self.root} is not a result store (no shards/ directory)"
            )
        if not self.root.is_dir():
            if not create:
                raise StoreError(f"result store {self.root} does not exist")
            try:
                # shards/ is created eagerly: it is what marks a directory
                # as a result store (load_snapshot refuses directories
                # without it), so even a never-written store is recognisable.
                (self.root / "shards").mkdir(parents=True, exist_ok=True)
            except OSError as error:
                # e.g. the path exists as a regular file, or a parent is
                # unwritable — surface the library's error type, not a
                # traceback.
                raise StoreError(
                    f"cannot create result store at {self.root}: {error}"
                ) from None
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.last_load_dropped_partial = 0
        self._cache: dict[str, _Shard] = {}
        self._lock_depth = 0
        self._repair = repair

    @contextlib.contextmanager
    def _write_lock(self):
        """Serialise mutating operations across processes sharing this store.

        An advisory ``flock`` on ``<root>/.lock`` held around every append,
        partial-line repair and ``gc`` rewrite: O_APPEND keeps individual
        writes whole on its own, but the lock is what makes the *compound*
        operations safe — a repair's check-then-truncate cannot race a
        concurrent append, and a ``gc`` read-rewrite-replace cannot drop a
        record appended in between.  Re-entrant within an instance (process
        concurrency is the model here, one store instance per process); a
        no-op on platforms without ``fcntl``.
        """
        if self._lock_depth or fcntl is None:
            self._lock_depth += 1
            try:
                yield
            finally:
                self._lock_depth -= 1
            return
        try:
            descriptor = os.open(self.root / ".lock", os.O_CREAT | os.O_RDWR, 0o644)
        except OSError:
            # Read-only store (e.g. a shared snapshot mount): locking is
            # impossible but reads must still work — proceed unlocked; the
            # degraded paths (_repair_partial, _append) handle the read-only
            # case themselves.
            self._lock_depth += 1
            try:
                yield
            finally:
                self._lock_depth -= 1
            return
        try:
            fcntl.flock(descriptor, fcntl.LOCK_EX)
            self._lock_depth = 1
            try:
                yield
            finally:
                self._lock_depth = 0
        finally:
            # Closing the descriptor releases the flock.
            os.close(descriptor)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @staticmethod
    def _key(spec_or_fingerprint: Any) -> tuple[str, Any]:
        """Resolve a spec-or-fingerprint argument to ``(fingerprint, spec|None)``."""
        if isinstance(spec_or_fingerprint, str):
            return spec_or_fingerprint, None
        fingerprint = spec_or_fingerprint.fingerprint()
        return fingerprint, spec_or_fingerprint

    @staticmethod
    def _seed_for(spec: Any, seed: "int | None") -> int:
        if seed is not None:
            return int(seed)
        if spec is None:
            raise StoreError(
                "a trial's root seed is part of its store key: pass seed=... "
                "when addressing by bare fingerprint"
            )
        return int(spec.seed)

    def _shard_path(self, fingerprint: str) -> Path:
        return self.root / "shards" / fingerprint[:2] / f"{fingerprint}.jsonl"

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _load(self, fingerprint: str) -> _Shard:
        """The in-memory image of one shard, reading it on first access.

        A trailing half-record (a writer killed mid-append) is *repaired* by
        truncating it away before it is skipped: every writer loads a shard
        before appending to it, so the orphan fragment is gone before any new
        line could merge into it.  The truncation only happens when the file
        has not grown since it was read (a grown file means another process
        already repaired it — re-read and check again).
        """
        shard = self._cache.get(fingerprint)
        if shard is not None:
            return shard
        shard = _Shard()
        path = self._shard_path(fingerprint)
        if path.exists():
            raw = path.read_bytes()
            if raw and not raw.endswith(b"\n"):
                if self._repair:
                    # Repair under the store's write lock, so the size check
                    # and the truncation cannot race a concurrent append.
                    with self._write_lock():
                        raw = self._repair_partial(path, shard)
                else:
                    # Inspection-only store: skip the fragment in memory,
                    # leave the file byte-for-byte untouched.
                    self.last_load_dropped_partial += 1
                    shard.dropped_partial = True
                    raw = raw[: raw.rfind(b"\n") + 1]
            records, dropped = _parse_lines(
                raw.decode("utf-8"), source=str(path)
            )
            shard.dropped_partial = shard.dropped_partial or dropped
            shard.raw_records = len(records)
            for record in records:
                if record.fingerprint != fingerprint:
                    raise StoreError(
                        f"{path}: record fingerprint {record.fingerprint[:12]}... "
                        f"does not match its shard {fingerprint[:12]}..."
                    )
                if record.kind == "spec":
                    if shard.spec is None:
                        shard.spec = dict(record.payload)
                elif record.kind == "result":
                    shard.results.setdefault((record.seed, record.trial), dict(record.payload))
                elif record.kind == "summary":
                    shard.summaries.setdefault((record.seed, record.trial), dict(record.payload))
        self._cache[fingerprint] = shard
        return shard

    def _repair_partial(self, path: Path, shard: _Shard) -> bytes:
        """Resolve a trailing half-record; returns the committed shard bytes.

        Called with the write lock held.  On locking platforms the file
        cannot grow underneath us; where ``fcntl`` is unavailable the lock is
        a no-op, so when the truncation's size check fails the file is
        re-read and re-evaluated (a grown file means a concurrent writer
        appended — its committed records must not be dropped from the view).
        An unchanged file that cannot be truncated is a read-only store: the
        fragment is skipped in memory only and ``_append`` terminates it if
        this instance ever writes.
        """
        raw = path.read_bytes()
        for _ in range(16):  # bounded: each retry means another writer appended
            if not raw or raw.endswith(b"\n"):
                return raw
            committed = raw.rfind(b"\n") + 1
            if self._truncate_partial(path, expected_size=len(raw), keep=committed):
                self.last_load_dropped_partial += 1
                return raw[:committed]
            reread = path.read_bytes()
            if reread == raw:
                self.last_load_dropped_partial += 1
                shard.dropped_partial = True
                return raw[:committed]
            raw = reread
        # Still racing after many retries: skip the fragment in memory only.
        committed = raw.rfind(b"\n") + 1
        self.last_load_dropped_partial += 1
        shard.dropped_partial = True
        return raw[:committed]

    @staticmethod
    def _truncate_partial(path: Path, *, expected_size: int, keep: int) -> bool:
        """Drop a trailing half-record, but only if the file has not grown.

        Returns ``True`` when the file now ends at ``keep`` bytes (repaired
        by us, or already repaired elsewhere); ``False`` when another writer
        appended in the meantime (caller re-reads) or the file cannot be
        opened for writing (read-only store — the fragment is then merely
        skipped, not removed).
        """
        try:
            descriptor = os.open(path, os.O_RDWR)
        except OSError:
            return False
        try:
            if os.fstat(descriptor).st_size != expected_size:
                return False
            os.ftruncate(descriptor, keep)
            return True
        finally:
            os.close(descriptor)

    def refresh(self) -> None:
        """Drop the in-memory index; the next access re-reads the shards.

        Needed only when another process may have appended since this
        instance last read a shard (e.g. a long-lived service sharing a store
        with batch writers).
        """
        self._cache.clear()

    def _decode_result(
        self, fingerprint: str, key: tuple[int, int], payload: Mapping[str, Any]
    ) -> RunResult:
        """Rebuild one stored payload, mapping decode failures to StoreError."""
        try:
            return RunResult.from_dict(payload)
        except (ReproError, TypeError, ValueError, KeyError) as error:
            seed, trial = key
            raise StoreError(
                f"{self._shard_path(fingerprint)}: corrupt result payload for "
                f"seed={seed} trial={trial}: {error}"
            ) from None

    def get(
        self, spec_or_fingerprint: Any, trial: int, *, seed: "int | None" = None
    ) -> "RunResult | None":
        """The cached result of one trial, or ``None`` (counted as hit/miss)."""
        fingerprint, spec = self._key(spec_or_fingerprint)
        key = (self._seed_for(spec, seed), int(trial))
        payload = self._load(fingerprint).results.get(key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return self._decode_result(fingerprint, key, payload)

    def contains(
        self, spec_or_fingerprint: Any, trial: int, *, seed: "int | None" = None
    ) -> bool:
        """Presence check that does not touch the hit/miss counters."""
        fingerprint, spec = self._key(spec_or_fingerprint)
        key = (self._seed_for(spec, seed), int(trial))
        return key in self._load(fingerprint).results

    def missing_trials(
        self,
        spec: Any,
        trials: "int | None" = None,
        *,
        seed: "int | None" = None,
    ) -> list[int]:
        """Trial indices of ``range(trials)`` not yet present (spec plan default)."""
        fingerprint, resolved = self._key(spec)
        if trials is None:
            if resolved is None:
                raise StoreError(
                    "missing_trials needs an explicit trial count when "
                    "addressing by bare fingerprint"
                )
            trials = resolved.trials
        effective_seed = self._seed_for(resolved, seed)
        present = self._load(fingerprint).results
        return [t for t in range(trials) if (effective_seed, t) not in present]

    def results(
        self,
        spec_or_fingerprint: Any,
        trials: "int | None" = None,
        *,
        seed: "int | None" = None,
    ) -> dict[int, RunResult]:
        """Every cached trial (optionally restricted to ``range(trials)``)."""
        fingerprint, spec = self._key(spec_or_fingerprint)
        if trials is None and spec is not None:
            trials = spec.trials
        effective_seed = self._seed_for(spec, seed)
        out: dict[int, RunResult] = {}
        for (record_seed, trial), payload in self._load(fingerprint).results.items():
            if record_seed != effective_seed:
                continue
            if trials is not None and not 0 <= trial < trials:
                continue
            out[trial] = self._decode_result(fingerprint, (record_seed, trial), payload)
        return out

    def summaries(
        self,
        spec_or_fingerprint: Any,
        trials: "int | None" = None,
        *,
        seed: "int | None" = None,
    ) -> dict[int, dict[str, Any]]:
        """Every cached summary payload (full results project down transparently).

        A trial archived as a full ``result`` record is returned as its
        :func:`summarize_result` projection, so callers that only need
        stopping times see one uniform shape regardless of how the trials
        were archived.
        """
        fingerprint, spec = self._key(spec_or_fingerprint)
        if trials is None and spec is not None:
            trials = spec.trials
        effective_seed = self._seed_for(spec, seed)
        shard = self._load(fingerprint)
        out: dict[int, dict[str, Any]] = {}
        for bucket, project in ((shard.results, True), (shard.summaries, False)):
            for (record_seed, trial), payload in bucket.items():
                if record_seed != effective_seed:
                    continue
                if trials is not None and not 0 <= trial < trials:
                    continue
                if trial not in out:
                    out[trial] = _project_summary(payload) if project else dict(payload)
        return out

    def missing_summary_trials(
        self,
        spec: Any,
        trials: "int | None" = None,
        *,
        seed: "int | None" = None,
    ) -> list[int]:
        """Trial indices of ``range(trials)`` with neither a result nor a summary."""
        fingerprint, resolved = self._key(spec)
        if trials is None:
            if resolved is None:
                raise StoreError(
                    "missing_summary_trials needs an explicit trial count "
                    "when addressing by bare fingerprint"
                )
            trials = resolved.trials
        effective_seed = self._seed_for(resolved, seed)
        shard = self._load(fingerprint)
        return [
            t
            for t in range(trials)
            if (effective_seed, t) not in shard.results
            and (effective_seed, t) not in shard.summaries
        ]

    def _iter_shard_records(self, fingerprint: str) -> Iterator[StoreRecord]:
        """Stream one shard's committed records without materialising it.

        Used by :meth:`aggregate` so that a 10^5-record summary shard never
        holds more than one parsed line in memory.  The trailing
        unterminated line of a writer killed mid-append is skipped, never
        repaired — this is a read-only pass and must not modify the file.
        Records come back in file order; first-record-wins deduplication is
        the caller's job.
        """
        path = self._shard_path(fingerprint)
        if not path.exists():
            return
        source = str(path)
        with open(path, "r", encoding="utf-8", newline="") as handle:
            for number, line in enumerate(handle, start=1):
                if not line.endswith("\n"):
                    break
                if not line.strip():
                    continue
                record = _parse_record(line, source=source, line_number=number)
                if record.fingerprint != fingerprint:
                    raise StoreError(
                        f"{path}: record fingerprint {record.fingerprint[:12]}... "
                        f"does not match its shard {fingerprint[:12]}..."
                    )
                yield record

    @staticmethod
    def _stopping_value(
        source: str, key: tuple[int, int], payload: Mapping[str, Any]
    ) -> tuple[float, bool]:
        """Extract ``(rounds, completed)`` from a result or summary payload."""
        rounds = payload.get("rounds")
        completed = payload.get("completed")
        if (
            isinstance(rounds, bool)
            or not isinstance(rounds, (int, float))
            or not isinstance(completed, bool)
        ):
            seed, trial = key
            raise StoreError(
                f"{source}: corrupt result payload for seed={seed} "
                f"trial={trial}: needs numeric 'rounds' and boolean 'completed'"
            )
        return float(rounds), completed

    def aggregate(
        self,
        spec_or_fingerprint: Any,
        trials: "int | None" = None,
        *,
        seed: "int | None" = None,
    ) -> StoppingTimeStats:
        """Stopping-time statistics over cached trials ``0 .. trials-1``.

        Consumes full ``result`` records and streaming ``summary`` records
        interchangeably, and **streams**: only the scalar
        ``(rounds, completed)`` pair of each trial is ever held — a shard
        not already resident in this instance's cache is read line by line
        without populating the cache, so aggregating a 10^5-trial summary
        shard costs O(trials) floats, not O(shard bytes) of decoded
        :class:`~repro.core.results.RunResult` objects.  The samples are
        assembled in trial-index order, exactly as the materialising path
        always did, so the statistics are bit-identical.

        Raises :class:`StoreError` naming the missing indices when the store
        does not hold the full trial range — an aggregate over a partial
        cache would silently change the statistics.
        """
        fingerprint, spec = self._key(spec_or_fingerprint)
        if trials is None:
            if spec is None:
                raise StoreError(
                    "aggregate needs an explicit trial count when addressing "
                    "by bare fingerprint"
                )
            trials = spec.trials
        effective_seed = self._seed_for(spec, seed)
        source = str(self._shard_path(fingerprint))
        values: dict[int, tuple[float, bool]] = {}
        shard = self._cache.get(fingerprint)
        if shard is not None:
            # Already resident: read the scalar pair straight off the cached
            # payload dictionaries (full results first — both kinds agree by
            # the conflict invariant, so priority only breaks exact ties).
            for bucket in (shard.results, shard.summaries):
                for (record_seed, trial), payload in bucket.items():
                    if record_seed != effective_seed or not 0 <= trial < trials:
                        continue
                    if trial not in values:
                        values[trial] = self._stopping_value(
                            source, (record_seed, trial), payload
                        )
        else:
            for record in self._iter_shard_records(fingerprint):
                if record.kind not in ("result", "summary"):
                    continue
                if record.seed != effective_seed or not 0 <= record.trial < trials:
                    continue
                if record.trial not in values:
                    values[record.trial] = self._stopping_value(
                        source, (record.seed, record.trial), record.payload
                    )
        missing = [t for t in range(trials) if t not in values]
        if missing:
            raise StoreError(
                f"store {self.root} holds {len(values)}/{trials} trials for "
                f"{fingerprint[:12]}...; missing trial indices {missing[:8]}"
                f"{'...' if len(missing) > 8 else ''}"
            )
        samples: list[float] = []
        incomplete = 0
        for trial in range(trials):
            rounds, completed = values[trial]
            if completed:
                samples.append(rounds)
            else:
                incomplete += 1
        if not samples:
            # The exact message aggregate_results raises, so callers see one
            # error regardless of which path aggregated.
            raise AnalysisError(
                "no completed trials to aggregate; "
                f"{incomplete} trials hit the round limit"
            )
        return StoppingTimeStats(samples=tuple(samples), incomplete_trials=incomplete)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    @staticmethod
    def _encode(record: dict[str, Any]) -> str:
        return json.dumps(record, sort_keys=True, separators=(",", ":"))

    @classmethod
    def _spec_line(cls, fingerprint: str, spec_payload: Mapping[str, Any]) -> str:
        """The encoded shard-header record (one schema, shared by every writer)."""
        return cls._encode(
            {"kind": "spec", "fingerprint": fingerprint, "spec": dict(spec_payload)}
        )

    @classmethod
    def _result_line(
        cls, fingerprint: str, seed: int, trial: int, payload: Mapping[str, Any]
    ) -> str:
        """The encoded trial record (one schema, shared by every writer)."""
        return cls._encode(
            {
                "kind": "result",
                "fingerprint": fingerprint,
                "seed": int(seed),
                "trial": int(trial),
                "result": dict(payload),
            }
        )

    @classmethod
    def _summary_line(
        cls, fingerprint: str, seed: int, trial: int, payload: Mapping[str, Any]
    ) -> str:
        """The encoded streaming-summary record (one schema, every writer)."""
        return cls._encode(
            {
                "kind": "summary",
                "fingerprint": fingerprint,
                "seed": int(seed),
                "trial": int(trial),
                "summary": dict(payload),
            }
        )

    def _append(self, fingerprint: str, lines: list[str]) -> None:
        """Append whole lines in one O_APPEND write, under the write lock."""
        path = self._shard_path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = "".join(f"{line}\n" for line in lines).encode("utf-8")
        shard = self._cache.get(fingerprint)
        with self._write_lock():
            if shard is not None and shard.dropped_partial:
                # The shard ends in an interrupted half-record the load-time
                # repair could not truncate (read-only then); terminate it so
                # the new records start on their own lines (the orphaned
                # fragment stays unparsed — blank/partial lines are skipped
                # on read — and gc() removes it).
                data = b"\n" + data
                shard.dropped_partial = False
            try:
                descriptor = os.open(path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
                try:
                    # POSIX permits short writes (signals, disk pressure);
                    # every byte must land or the shard would end mid-record.
                    view = memoryview(data)
                    while view:
                        view = view[os.write(descriptor, view):]
                finally:
                    os.close(descriptor)
            except OSError as error:
                # Read-only or full store: surface the library's error type
                # (callers have not yet updated their in-memory view, so the
                # cache stays consistent with the disk).
                raise StoreError(
                    f"cannot append to result store shard {path}: {error}"
                ) from None

    def put(
        self, spec: Any, trial: int, result: RunResult, *, seed: "int | None" = None
    ) -> bool:
        """Persist one trial result; returns ``False`` if it was already present."""
        return self.put_many(spec, {int(trial): result}, seed=seed) == 1

    def put_many(
        self,
        spec: Any,
        results_by_trial: Mapping[int, RunResult],
        *,
        seed: "int | None" = None,
    ) -> int:
        """Persist several trial results in one append; returns how many were new.

        Keys already present with an **identical** payload are skipped (the
        store is deduplicated by construction where possible; concurrent
        writers may still race, which the first-record-wins read rule
        absorbs).  A key already present with a *different* payload raises
        :class:`StoreError`: same-keyed trials are deterministic, so a
        conflict means the simulation code changed underneath the archive.
        """
        fingerprint, resolved = self._key(spec)
        if resolved is None:
            raise StoreError(
                "put requires the full ScenarioSpec (shards are self-describing); "
                "got a bare fingerprint"
            )
        effective_seed = self._seed_for(resolved, seed)
        shard = self._load(fingerprint)
        lines: list[str] = []
        new_spec: "dict[str, Any] | None" = None
        if shard.spec is None:
            new_spec = resolved.to_dict()
            lines.append(self._spec_line(fingerprint, new_spec))
        staged: list[tuple[tuple[int, int], dict[str, Any]]] = []
        for trial, result in sorted(results_by_trial.items()):
            key = (effective_seed, int(trial))
            payload = result.to_dict()
            stored = shard.results.get(key)
            if stored is not None:
                if stored != payload:
                    # Identical (workload, seed, trial) keys must produce
                    # identical results — a conflict means the simulation
                    # code changed since the record was written (or the
                    # store was tampered with).  Failing loudly here is what
                    # makes a ``fresh`` run an actual re-verification and
                    # keeps stale archives from silently serving old numbers.
                    raise StoreError(
                        f"store {self.root} already holds a different result "
                        f"for {fingerprint[:12]}... seed={effective_seed} "
                        f"trial={trial}; the workload's behaviour has changed "
                        "since it was archived — gc the shard (or point at a "
                        "new store) to re-archive"
                    )
                continue
            summary = shard.summaries.get(key)
            if summary is not None and summary != _project_summary(payload):
                # A summary archived for this key is the same trial's
                # projection by determinism; a full result that disagrees
                # with it is the same divergence put_many refuses above.
                raise StoreError(
                    f"store {self.root} already holds a summary that "
                    f"contradicts this result for {fingerprint[:12]}... "
                    f"seed={effective_seed} trial={trial}; the workload's "
                    "behaviour has changed since it was archived — gc the "
                    "shard (or point at a new store) to re-archive"
                )
            staged.append((key, payload))
            lines.append(self._result_line(fingerprint, effective_seed, trial, payload))
        if lines:
            # Disk first, memory second: a failed append (read-only / full
            # store) must not leave the cache claiming unpersisted records.
            self._append(fingerprint, lines)
            shard.raw_records += len(lines)
            if new_spec is not None:
                shard.spec = new_spec
            for key, payload in staged:
                shard.results[key] = payload
        self.puts += len(staged)
        return len(staged)

    def put_summaries(
        self,
        spec: Any,
        summaries_by_trial: "Mapping[int, Mapping[str, Any] | RunResult]",
        *,
        seed: "int | None" = None,
    ) -> int:
        """Persist streaming summary records; returns how many were new.

        Values may be full :class:`~repro.core.results.RunResult` objects
        (projected via :func:`summarize_result`) or ready-made summary
        payloads carrying exactly the :data:`SUMMARY_KEYS`.  The conflict
        rules mirror :meth:`put_many`: a key already covered — by an
        identical summary, *or* by a full result whose projection matches —
        is skipped without writing, and any divergence raises
        :class:`StoreError`, so a ``fresh`` rerun through the summary path
        re-verifies the archive exactly like the full-record path does.
        """
        fingerprint, resolved = self._key(spec)
        if resolved is None:
            raise StoreError(
                "put requires the full ScenarioSpec (shards are self-describing); "
                "got a bare fingerprint"
            )
        effective_seed = self._seed_for(resolved, seed)
        shard = self._load(fingerprint)
        lines: list[str] = []
        new_spec: "dict[str, Any] | None" = None
        if shard.spec is None:
            new_spec = resolved.to_dict()
            lines.append(self._spec_line(fingerprint, new_spec))
        staged: list[tuple[tuple[int, int], dict[str, Any]]] = []
        for trial, value in sorted(summaries_by_trial.items()):
            key = (effective_seed, int(trial))
            if isinstance(value, RunResult):
                payload = summarize_result(value)
            else:
                payload = {k: value[k] for k in sorted(value)}
                if tuple(sorted(payload)) != SUMMARY_KEYS:
                    raise StoreError(
                        f"a summary payload carries exactly {list(SUMMARY_KEYS)}; "
                        f"got keys {sorted(payload)} for trial {trial}"
                    )
            full = shard.results.get(key)
            if full is not None:
                if _project_summary(full) != payload:
                    raise StoreError(
                        f"store {self.root} already holds a full result that "
                        f"contradicts this summary for {fingerprint[:12]}... "
                        f"seed={effective_seed} trial={trial}; the workload's "
                        "behaviour has changed since it was archived — gc the "
                        "shard (or point at a new store) to re-archive"
                    )
                continue  # the full record already covers this trial
            stored = shard.summaries.get(key)
            if stored is not None:
                if stored != payload:
                    raise StoreError(
                        f"store {self.root} already holds a different summary "
                        f"for {fingerprint[:12]}... seed={effective_seed} "
                        f"trial={trial}; the workload's behaviour has changed "
                        "since it was archived — gc the shard (or point at a "
                        "new store) to re-archive"
                    )
                continue
            staged.append((key, payload))
            lines.append(self._summary_line(fingerprint, effective_seed, trial, payload))
        if lines:
            # Disk first, memory second (see put_many).
            self._append(fingerprint, lines)
            shard.raw_records += len(lines)
            if new_spec is not None:
                shard.spec = new_spec
            for key, payload in staged:
                shard.summaries[key] = payload
        self.puts += len(staged)
        return len(staged)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def fingerprints(self) -> list[str]:
        """Sorted fingerprints of every shard on disk."""
        shards_dir = self.root / "shards"
        if not shards_dir.is_dir():
            return []
        return sorted(path.stem for path in shards_dir.glob("*/*.jsonl"))

    def spec_dict(self, fingerprint: str) -> "dict[str, Any] | None":
        """The stored canonical spec JSON of one shard (``None`` if absent)."""
        spec = self._load(fingerprint).spec
        return dict(spec) if spec is not None else None

    def spec(self, fingerprint: str) -> Any:
        """Rebuild the stored :class:`~repro.scenarios.ScenarioSpec` of a shard."""
        payload = self.spec_dict(fingerprint)
        if payload is None:
            raise StoreError(
                f"shard {fingerprint[:12]}... has no spec header; the store "
                "can only rebuild workloads written through put()"
            )
        # Imported lazily: the scenario layer sits above the store's own
        # dependencies (core, errors) in the package stack.
        from ..scenarios.spec import ScenarioSpec

        return ScenarioSpec.from_dict(payload)

    def trial_keys(self, fingerprint: str) -> list[tuple[int, int]]:
        """Sorted ``(seed, trial)`` keys cached for one fingerprint (either kind)."""
        shard = self._load(fingerprint)
        return sorted(set(shard.results) | set(shard.summaries))

    def resolve_fingerprint(self, prefix: str) -> str:
        """Expand a unique fingerprint prefix (as the CLI accepts) to the full hash."""
        matches = [fp for fp in self.fingerprints() if fp.startswith(prefix)]
        if not matches:
            raise StoreError(f"no shard matches fingerprint prefix {prefix!r}")
        if len(matches) > 1:
            raise StoreError(
                f"fingerprint prefix {prefix!r} is ambiguous: "
                f"{[m[:12] for m in matches]}"
            )
        return matches[0]

    def gc(self, keep: "Iterable[Any] | None" = None) -> dict[str, int]:
        """Compact the store; optionally drop every workload not in ``keep``.

        With ``keep=None`` every shard is kept but rewritten without
        duplicate records and interrupted partial lines.  With ``keep`` (an
        iterable of specs, or fingerprint strings — unambiguous prefixes
        accepted, and an entry matching **no** shard raises rather than
        silently keeping nothing) the shards of all other workloads are
        deleted.  Rewrites are atomic (temp file + ``os.replace``), so a
        reader never observes a half-compacted shard, and the whole pass
        holds the store's write lock, so a concurrent writer's append can
        never land between a shard's read and its replacement (it waits, then
        appends to the compacted file).
        """
        stats = {
            "kept_shards": 0,
            "removed_shards": 0,
            "kept_records": 0,
            "dropped_records": 0,
        }
        with self._write_lock():
            # Drop any pre-lock view: the shards must be re-read while no
            # other writer can interleave.
            self.refresh()
            keep_fingerprints: "set[str] | None" = None
            if keep is not None:
                # Every keep entry — string (prefix allowed) or spec — must
                # match a shard that actually exists: a typo'd or
                # nothing-matching entry must never turn into "delete
                # everything".
                existing = set(self.fingerprints())
                keep_fingerprints = set()
                for entry in keep:
                    if isinstance(entry, str):
                        fingerprint = self.resolve_fingerprint(entry)
                    else:
                        fingerprint = self._key(entry)[0]
                        if fingerprint not in existing:
                            raise StoreError(
                                f"gc keep entry {fingerprint[:12]}... matches "
                                "no shard in this store; refusing to prune"
                            )
                    keep_fingerprints.add(fingerprint)
            for fingerprint in self.fingerprints():
                path = self._shard_path(fingerprint)
                shard = self._load(fingerprint)
                if keep_fingerprints is not None and fingerprint not in keep_fingerprints:
                    stats["removed_shards"] += 1
                    stats["dropped_records"] += shard.raw_records
                    path.unlink()
                    continue
                lines: list[str] = []
                if shard.spec is not None:
                    lines.append(self._spec_line(fingerprint, shard.spec))
                for (record_seed, trial), payload in sorted(shard.results.items()):
                    lines.append(
                        self._result_line(fingerprint, record_seed, trial, payload)
                    )
                for (record_seed, trial), payload in sorted(shard.summaries.items()):
                    if (record_seed, trial) in shard.results:
                        # Shadowed by the richer full record (identical by the
                        # conflict invariant): compacting drops the duplicate.
                        continue
                    lines.append(
                        self._summary_line(fingerprint, record_seed, trial, payload)
                    )
                temp_path = path.with_suffix(".jsonl.tmp")
                temp_path.write_text(
                    "".join(f"{line}\n" for line in lines), encoding="utf-8"
                )
                os.replace(temp_path, path)
                stats["kept_shards"] += 1
                stats["kept_records"] += len(lines)
                stats["dropped_records"] += max(0, shard.raw_records - len(lines))
        self.refresh()
        return stats

    # ------------------------------------------------------------------
    # Export / import
    # ------------------------------------------------------------------
    def export(
        self, path: "str | Path", fingerprints: "Iterable[str] | None" = None
    ) -> int:
        """Write the store (or selected fingerprints) as one portable JSONL file.

        The file carries the same record stream as the shards plus a format
        header; :meth:`import_file` (or :func:`load_snapshot`, or
        ``benchmarks/check_regression.py --store``) reads it back.  Returns
        the number of result records exported.
        """
        path = Path(path)
        selected = (
            self.fingerprints()
            if fingerprints is None
            else [self.resolve_fingerprint(fp) for fp in fingerprints]
        )
        lines = [self._encode({"kind": "header", "format": EXPORT_FORMAT})]
        exported = 0
        for fingerprint in selected:
            shard = self._load(fingerprint)
            if shard.spec is not None:
                lines.append(self._spec_line(fingerprint, shard.spec))
            for (record_seed, trial), payload in sorted(shard.results.items()):
                lines.append(self._result_line(fingerprint, record_seed, trial, payload))
                exported += 1
            for (record_seed, trial), payload in sorted(shard.summaries.items()):
                lines.append(self._summary_line(fingerprint, record_seed, trial, payload))
                exported += 1
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("".join(f"{line}\n" for line in lines), encoding="utf-8")
        return exported

    def import_file(self, path: "str | Path") -> int:
        """Merge an export file into this store; returns how many records were new.

        New records are grouped by fingerprint and written with one append
        per shard (the same batching :meth:`put_many` uses), not one write
        per record.  An imported record that *diverges* from the locally
        stored payload for the same ``(fingerprint, seed, trial)`` raises
        :class:`StoreError`, exactly as :meth:`put_many` does — identical
        seeded trials must never differ, and a merge is not allowed to paper
        over two archives that disagree.
        """
        pending_specs: dict[str, dict[str, Any]] = {}
        pending_lines: dict[str, list[str]] = {}
        staged: dict[str, dict[tuple[int, int], dict[str, Any]]] = {}
        staged_summaries: dict[str, dict[tuple[int, int], dict[str, Any]]] = {}
        staged_specs: dict[str, dict[str, Any]] = {}

        def _conflict(record: StoreRecord) -> StoreError:
            return StoreError(
                f"import of {path} conflicts with store {self.root}: "
                f"different {record.kind} for {record.fingerprint[:12]}... "
                f"seed={record.seed} trial={record.trial} (the two "
                "archives were written by diverging simulation code)"
            )

        def _stage_spec(record: StoreRecord, shard: _Shard, lines: list[str]) -> None:
            if shard.spec is None and record.fingerprint not in staged_specs:
                spec_payload = pending_specs.get(record.fingerprint)
                if spec_payload is not None:
                    staged_specs[record.fingerprint] = spec_payload
                    lines.append(self._spec_line(record.fingerprint, spec_payload))

        for record in iter_records(path):
            if record.kind == "spec":
                pending_specs[record.fingerprint] = dict(record.payload)
                continue
            shard = self._load(record.fingerprint)
            key = (record.seed, record.trial)
            payload = dict(record.payload)
            if record.kind == "summary":
                full = shard.results.get(key)
                if full is None:
                    full = staged.get(record.fingerprint, {}).get(key)
                if full is not None:
                    # A local (or just-imported) full result covers this
                    # trial; the incoming summary must be its projection.
                    if _project_summary(full) != payload:
                        raise _conflict(record)
                    continue
                stored = shard.summaries.get(key)
                if stored is not None:
                    if stored != payload:
                        raise _conflict(record)
                    continue
                shard_staged = staged_summaries.setdefault(record.fingerprint, {})
                if key in shard_staged:
                    if shard_staged[key] != payload:
                        raise _conflict(record)
                    continue
                lines = pending_lines.setdefault(record.fingerprint, [])
                _stage_spec(record, shard, lines)
                shard_staged[key] = payload
                lines.append(
                    self._summary_line(record.fingerprint, record.seed, record.trial, payload)
                )
                continue
            stored = shard.results.get(key)
            if stored is not None:
                if stored != payload:
                    raise _conflict(record)
                continue
            summary = shard.summaries.get(key)
            if summary is None:
                summary = staged_summaries.get(record.fingerprint, {}).get(key)
            if summary is not None and summary != _project_summary(payload):
                raise _conflict(record)
            shard_staged = staged.setdefault(record.fingerprint, {})
            if key in shard_staged:
                continue
            lines = pending_lines.setdefault(record.fingerprint, [])
            _stage_spec(record, shard, lines)
            shard_staged[key] = payload
            lines.append(
                self._result_line(record.fingerprint, record.seed, record.trial, payload)
            )
        imported = sum(len(entries) for entries in staged.values()) + sum(
            len(entries) for entries in staged_summaries.values()
        )
        for fingerprint, lines in pending_lines.items():
            if not lines:
                continue
            # Disk first, memory second (see put_many).
            self._append(fingerprint, lines)
            shard = self._cache[fingerprint]
            shard.raw_records += len(lines)
            if fingerprint in staged_specs:
                shard.spec = staged_specs[fingerprint]
            shard.results.update(staged.get(fingerprint, {}))
            shard.summaries.update(staged_summaries.get(fingerprint, {}))
        self.puts += imported
        return imported
