"""Batched rank-only RLNC decoding.

Stopping-time experiments (Table 1, Table 2, the Theorem 2 reduction) only
ever ask *when* every node reaches full rank — the decoded payloads are never
inspected.  :class:`BatchDecoder` exploits that: it tracks the coefficient
row spaces of many independent decoders (trials x nodes) simultaneously on
top of a batched :class:`~repro.backends.EliminatorState` supplied by the
active compute backend, dropping the payload columns entirely.

Because the stored state is the canonical RREF basis of each decoder's
coefficient space, the ranks — and the coefficient vectors of freshly encoded
packets — are **bit-identical** to what a grid of scalar
:class:`~repro.rlnc.decoder.RlncDecoder` objects fed the same packets would
produce.  ``tests/test_rlnc_batch.py`` asserts exactly that on random traces.
"""

from __future__ import annotations

import numpy as np

from ..errors import DecodingError
from ..gf.field import GaloisField

__all__ = ["BatchDecoder"]


class BatchDecoder:
    """Rank state of ``problems`` independent RLNC decoders over ``GF(q)``.

    Parameters
    ----------
    field:
        The finite field all packets are coded over.
    k:
        Generation size (number of source messages, = coefficient columns).
    problems:
        Number of independent decoders tracked (for gossip simulations this
        is ``trials * nodes``; the caller owns the flattening convention).
    backend:
        Compute backend (instance or registry name) providing the batched
        eliminator; default: the ambient backend (see
        :func:`repro.backends.use_backend`).
    """

    def __init__(
        self, field: GaloisField, k: int, problems: int, *, backend=None
    ) -> None:
        if k < 1:
            raise DecodingError(f"generation size must be positive, got {k}")
        if problems < 1:
            raise DecodingError(f"problem count must be positive, got {problems}")
        from ..backends import resolve_backend

        self.field = field
        self.k = k
        self.problems = problems
        self.backend = resolve_backend(backend)
        self._eliminator = self.backend.make_eliminator(field, problems, k)
        self._received = np.zeros(problems, dtype=np.int64)
        self._helpful = np.zeros(problems, dtype=np.int64)

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def ranks(self) -> np.ndarray:
        """Current rank of every decoder (a ``(problems,)`` int array, live view)."""
        return self._eliminator.ranks

    @property
    def complete(self) -> np.ndarray:
        """Boolean mask of decoders that reached full rank ``k``."""
        return self._eliminator.ranks == self.k

    @property
    def all_complete(self) -> bool:
        """``True`` once every tracked decoder reached full rank."""
        return bool(np.all(self._eliminator.ranks == self.k))

    def rank_of(self, index: int) -> int:
        """Rank of one decoder."""
        return self._eliminator.rank_of(index)

    def packets_received(self, index: int) -> int:
        """Packets fed to one decoder (helpful or not)."""
        return int(self._received[index])

    def helpful_received(self, index: int) -> int:
        """Packets that increased one decoder's rank."""
        return int(self._helpful[index])

    def coefficient_matrix(self, index: int) -> np.ndarray:
        """Stored RREF coefficient rows of one decoder, in pivot order."""
        return self._eliminator.basis(index)

    # ------------------------------------------------------------------
    # Receiving and encoding
    # ------------------------------------------------------------------
    def receive(
        self, rows: np.ndarray, indices: np.ndarray | None = None
    ) -> np.ndarray:
        """Feed one coefficient vector per selected decoder, vectorised.

        ``rows`` is ``(m, k)``; row ``j`` goes to decoder ``indices[j]`` (the
        indices must be distinct — one row per decoder per sweep).  Returns
        the boolean helpfulness mask, exactly as
        :meth:`RlncDecoder.receive <repro.rlnc.decoder.RlncDecoder.receive>`
        would per packet.
        """
        rows = self.field.validate(rows)  # rejects booleans, non-integers, out-of-range
        if rows.ndim != 2 or rows.shape[1] != self.k:
            raise DecodingError(
                f"expected coefficient rows of shape (m, {self.k}), got {rows.shape}"
            )
        if indices is None:
            indices = np.arange(rows.shape[0])
        else:
            indices = np.asarray(indices, dtype=np.int64)
            if indices.size and (
                indices.min() < 0 or indices.max() >= self.problems
            ):
                raise DecodingError(
                    f"decoder index out of range for {self.problems} problems: "
                    f"min={indices.min()}, max={indices.max()}"
                )
        helpful = self._eliminator.eliminate(rows, np.asarray(indices, dtype=np.int64))
        np.add.at(self._received, indices, 1)
        np.add.at(self._helpful, np.asarray(indices)[helpful], 1)
        return helpful

    def seed_unit(self, index: int, message_index: int) -> bool:
        """Seed one decoder with the unit coefficient vector ``e_message_index``."""
        if not 0 <= message_index < self.k:
            raise DecodingError(
                f"message index {message_index} out of range for k={self.k}"
            )
        row = self.field.zeros((1, self.k))
        row[0, message_index] = 1
        return bool(self.receive(row, np.array([index]))[0])

    def encode(self, index: int, coefficients: np.ndarray) -> np.ndarray:
        """Combine one decoder's stored rows with the given coefficients.

        ``coefficients`` must have length equal to the decoder's current rank;
        the result equals the coefficient part of the packet the scalar
        :class:`~repro.rlnc.encoder.RlncEncoder` would emit for the same
        draws, because the stored basis and its ordering coincide.
        """
        return self._eliminator.combine(index, coefficients)

    def __repr__(self) -> str:
        done = int(np.count_nonzero(self.complete))
        return (
            f"BatchDecoder(problems={self.problems}, k={self.k}, "
            f"q={self.field.order}, complete={done}/{self.problems})"
        )
