"""Incremental RLNC decoder based on on-line Gaussian elimination.

Each gossip node owns one :class:`RlncDecoder`.  The decoder stores the linear
equations (coded packets) the node has accumulated, kept permanently in
reduced row-echelon form so that

* checking whether a received packet is *helpful* (Definition 3 of the paper —
  it increases the rank) costs one row-reduction against the stored pivots,
* the node's rank is simply the number of stored rows, and
* once the rank reaches ``k`` the original messages fall out of the stored
  matrix directly (the coefficient part is the identity).

The decoder is the ground truth for the stopping-time measurements: a node has
"finished" exactly when its decoder reports :meth:`is_complete`.

The elimination itself lives behind the :mod:`repro.backends` seam: the
decoder is a single-problem
:class:`~repro.backends.EliminatorState` over ``[coefficients | payload]``
rows (``augmented_columns = payload_length``, so payload symbols ride along
but never become pivots), built by whichever backend is active — dense numpy
by default, word-packed XOR kernels for ``GF(2)`` under ``gf2bit``.  Every
backend maintains the same canonical RREF basis, so the decoder's observable
state is backend-invariant.
"""

from __future__ import annotations

import numpy as np

from ..errors import DecodingError
from ..gf.field import GaloisField
from .message import Generation
from .packet import CodedPacket

__all__ = ["RlncDecoder"]


class RlncDecoder:
    """On-line Gaussian elimination over ``GF(q)`` for one gossip node.

    Parameters
    ----------
    field:
        The finite field all packets are coded over.
    k:
        Generation size (number of source messages in the system).
    payload_length:
        Number of payload symbols per message (``r``).
    backend:
        Compute backend (instance or registry name) for the elimination
        state; default: the ambient backend (see
        :func:`repro.backends.use_backend`).
    """

    def __init__(
        self,
        field: GaloisField,
        k: int,
        payload_length: int,
        *,
        backend=None,
    ) -> None:
        if k < 1:
            raise DecodingError(f"generation size must be positive, got {k}")
        if payload_length < 1:
            raise DecodingError(f"payload length must be positive, got {payload_length}")
        from ..backends import resolve_backend

        self.field = field
        self.k = k
        self.payload_length = payload_length
        self.backend = resolve_backend(backend)
        # One elimination problem over [coefficients | payload] rows; the
        # payload columns are augmented: carried through every row operation,
        # never pivoted on, never counted for helpfulness.
        self._eliminator = self.backend.make_eliminator(
            field, 1, k + payload_length, augmented_columns=payload_length
        )
        self._received = 0
        self._helpful = 0

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Current rank: number of linearly independent equations stored."""
        return self._eliminator.rank_of(0)

    @property
    def is_complete(self) -> bool:
        """``True`` once the node can decode all ``k`` messages."""
        return self.rank == self.k

    @property
    def packets_received(self) -> int:
        """Total packets fed to :meth:`receive` (helpful or not)."""
        return self._received

    @property
    def helpful_received(self) -> int:
        """Number of received packets that increased the rank."""
        return self._helpful

    @property
    def pivot_columns(self) -> tuple[int, ...]:
        """Pivot columns of the stored coefficient matrix, in row order."""
        return tuple(int(p) for p in np.nonzero(self._eliminator.pivot_mask[0])[0])

    def coefficient_matrix(self) -> np.ndarray:
        """The stored coefficient matrix (``rank x k``), a copy."""
        return self._eliminator.basis(0)[:, : self.k]

    def augmented_matrix(self) -> np.ndarray:
        """The stored ``[coefficients | payload]`` matrix (``rank x (k + r)``), a copy."""
        return self._eliminator.basis(0)

    # ------------------------------------------------------------------
    # Seeding with source messages
    # ------------------------------------------------------------------
    def add_source_message(self, index: int, payload: np.ndarray) -> bool:
        """Seed the decoder with an original source message.

        Equivalent to receiving the trivial packet whose coefficient vector is
        the unit vector ``e_index``.  Returns whether it was helpful (it always
        is, unless the node already knows that message).
        """
        packet = CodedPacket.unit(self.field, self.k, index, payload)
        return self.receive(packet)

    # ------------------------------------------------------------------
    # Receiving coded packets
    # ------------------------------------------------------------------
    def receive(self, packet: CodedPacket) -> bool:
        """Process a received packet; return ``True`` if it increased the rank.

        Non-helpful packets (linearly dependent on what is already stored, or
        all-zero) are counted but otherwise ignored, exactly as in the paper.
        """
        if packet.k != self.k:
            raise DecodingError(
                f"packet encoded for generation size {packet.k}, decoder expects {self.k}"
            )
        if packet.payload_length != self.payload_length:
            raise DecodingError(
                f"packet payload length {packet.payload_length} does not match "
                f"decoder payload length {self.payload_length}"
            )
        self._received += 1
        row = np.concatenate(
            [packet.coefficient_array(self.field), packet.payload_array(self.field)]
        ).astype(self.field.dtype)
        helpful = bool(
            self._eliminator.eliminate(row[np.newaxis, :], np.zeros(1, np.int64))[0]
        )
        if helpful:
            self._helpful += 1
        return helpful

    def would_be_helpful(self, packet: CodedPacket) -> bool:
        """Check helpfulness without mutating the decoder."""
        if packet.k != self.k or packet.payload_length != self.payload_length:
            raise DecodingError("packet dimensions do not match the decoder")
        coefficients = packet.coefficient_array(self.field)
        # Helpful ⇔ the coefficient vector lies outside the stored row space
        # (Definition 3); the payload never decides helpfulness.
        return not self.backend.is_in_row_space(
            self.field, self.coefficient_matrix(), coefficients
        )

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self) -> np.ndarray:
        """Recover the ``(k, r)`` matrix of original payloads.

        Raises
        ------
        DecodingError:
            If the decoder has not yet reached full rank.
        """
        if not self.is_complete:
            raise DecodingError(
                f"cannot decode: rank {self.rank} < generation size {self.k}"
            )
        # At full rank the RREF coefficient part is the identity (row i has
        # pivot column i), so the payload columns are the decoded messages.
        return self._eliminator.basis(0)[:, self.k :]

    def matches_generation(self, generation: Generation) -> bool:
        """Convenience check used by tests: decoded payloads equal the ground truth."""
        if not self.is_complete:
            return False
        return bool(np.array_equal(self.decode(), generation.payload_matrix))

    def __repr__(self) -> str:
        return (
            f"RlncDecoder(rank={self.rank}/{self.k}, q={self.field.order}, "
            f"received={self._received}, helpful={self._helpful})"
        )
