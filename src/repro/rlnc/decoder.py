"""Incremental RLNC decoder based on on-line Gaussian elimination.

Each gossip node owns one :class:`RlncDecoder`.  The decoder stores the linear
equations (coded packets) the node has accumulated, kept permanently in
reduced row-echelon form so that

* checking whether a received packet is *helpful* (Definition 3 of the paper —
  it increases the rank) costs one row-reduction against the stored pivots,
* the node's rank is simply the number of stored rows, and
* once the rank reaches ``k`` the original messages fall out of the stored
  matrix directly (the coefficient part is the identity).

The decoder is the ground truth for the stopping-time measurements: a node has
"finished" exactly when its decoder reports :meth:`is_complete`.
"""

from __future__ import annotations

import numpy as np

from ..errors import DecodingError
from ..gf.field import GaloisField
from .message import Generation
from .packet import CodedPacket

__all__ = ["RlncDecoder"]


class RlncDecoder:
    """On-line Gaussian elimination over ``GF(q)`` for one gossip node.

    Parameters
    ----------
    field:
        The finite field all packets are coded over.
    k:
        Generation size (number of source messages in the system).
    payload_length:
        Number of payload symbols per message (``r``).
    """

    def __init__(self, field: GaloisField, k: int, payload_length: int) -> None:
        if k < 1:
            raise DecodingError(f"generation size must be positive, got {k}")
        if payload_length < 1:
            raise DecodingError(f"payload length must be positive, got {payload_length}")
        self.field = field
        self.k = k
        self.payload_length = payload_length
        # Stored rows are [coefficients | payload], kept in RREF and ordered
        # by pivot column.  ``_pivot_of_row[i]`` is the pivot column of row i.
        self._rows: list[np.ndarray] = []
        self._pivot_of_row: list[int] = []
        self._received = 0
        self._helpful = 0

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Current rank: number of linearly independent equations stored."""
        return len(self._rows)

    @property
    def is_complete(self) -> bool:
        """``True`` once the node can decode all ``k`` messages."""
        return self.rank == self.k

    @property
    def packets_received(self) -> int:
        """Total packets fed to :meth:`receive` (helpful or not)."""
        return self._received

    @property
    def helpful_received(self) -> int:
        """Number of received packets that increased the rank."""
        return self._helpful

    @property
    def pivot_columns(self) -> tuple[int, ...]:
        """Pivot columns of the stored coefficient matrix, in row order."""
        return tuple(self._pivot_of_row)

    def coefficient_matrix(self) -> np.ndarray:
        """The stored coefficient matrix (``rank x k``), a copy."""
        if not self._rows:
            return self.field.zeros((0, self.k))
        return np.vstack([row[: self.k] for row in self._rows])

    def augmented_matrix(self) -> np.ndarray:
        """The stored ``[coefficients | payload]`` matrix (``rank x (k + r)``), a copy."""
        if not self._rows:
            return self.field.zeros((0, self.k + self.payload_length))
        return np.vstack(self._rows)

    # ------------------------------------------------------------------
    # Seeding with source messages
    # ------------------------------------------------------------------
    def add_source_message(self, index: int, payload: np.ndarray) -> bool:
        """Seed the decoder with an original source message.

        Equivalent to receiving the trivial packet whose coefficient vector is
        the unit vector ``e_index``.  Returns whether it was helpful (it always
        is, unless the node already knows that message).
        """
        packet = CodedPacket.unit(self.field, self.k, index, payload)
        return self.receive(packet)

    # ------------------------------------------------------------------
    # Receiving coded packets
    # ------------------------------------------------------------------
    def receive(self, packet: CodedPacket) -> bool:
        """Process a received packet; return ``True`` if it increased the rank.

        Non-helpful packets (linearly dependent on what is already stored, or
        all-zero) are counted but otherwise ignored, exactly as in the paper.
        """
        if packet.k != self.k:
            raise DecodingError(
                f"packet encoded for generation size {packet.k}, decoder expects {self.k}"
            )
        if packet.payload_length != self.payload_length:
            raise DecodingError(
                f"packet payload length {packet.payload_length} does not match "
                f"decoder payload length {self.payload_length}"
            )
        self._received += 1
        row = np.concatenate(
            [packet.coefficient_array(self.field), packet.payload_array(self.field)]
        ).astype(self.field.dtype)
        reduced = self._reduce_against_stored(row)
        pivot = self._first_nonzero_coefficient(reduced)
        if pivot is None:
            return False
        self._insert_row(reduced, pivot)
        self._helpful += 1
        return True

    def would_be_helpful(self, packet: CodedPacket) -> bool:
        """Check helpfulness without mutating the decoder."""
        if packet.k != self.k or packet.payload_length != self.payload_length:
            raise DecodingError("packet dimensions do not match the decoder")
        row = np.concatenate(
            [packet.coefficient_array(self.field), packet.payload_array(self.field)]
        ).astype(self.field.dtype)
        reduced = self._reduce_against_stored(row)
        return self._first_nonzero_coefficient(reduced) is not None

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self) -> np.ndarray:
        """Recover the ``(k, r)`` matrix of original payloads.

        Raises
        ------
        DecodingError:
            If the decoder has not yet reached full rank.
        """
        if not self.is_complete:
            raise DecodingError(
                f"cannot decode: rank {self.rank} < generation size {self.k}"
            )
        # Rows are in RREF with k pivots, so the coefficient part is a
        # permutation-free identity: row i has pivot column i.
        payloads = self.field.zeros((self.k, self.payload_length))
        for row, pivot in zip(self._rows, self._pivot_of_row):
            payloads[pivot] = row[self.k :]
        return payloads

    def matches_generation(self, generation: Generation) -> bool:
        """Convenience check used by tests: decoded payloads equal the ground truth."""
        if not self.is_complete:
            return False
        return bool(np.array_equal(self.decode(), generation.payload_matrix))

    # ------------------------------------------------------------------
    # Internal row operations
    # ------------------------------------------------------------------
    def _reduce_against_stored(self, row: np.ndarray) -> np.ndarray:
        """Eliminate the stored pivots from ``row`` (returns a new array)."""
        field = self.field
        row = row.copy()
        for stored, pivot in zip(self._rows, self._pivot_of_row):
            factor = int(row[pivot])
            if factor == 0:
                continue
            row = field.sub(row, field.scalar_mul(factor, stored))
        return row

    def _first_nonzero_coefficient(self, row: np.ndarray) -> int | None:
        """Index of the first non-zero entry in the coefficient part, or ``None``."""
        nonzero = np.nonzero(row[: self.k])[0]
        if nonzero.size == 0:
            return None
        return int(nonzero[0])

    def _insert_row(self, row: np.ndarray, pivot: int) -> None:
        """Normalise ``row``, back-substitute into stored rows, insert in pivot order."""
        field = self.field
        pivot_value = int(row[pivot])
        if pivot_value != 1:
            row = field.scalar_mul(int(field.inv(pivot_value)), row)
        # Eliminate the new pivot column from every stored row (keeps RREF).
        for index, stored in enumerate(self._rows):
            factor = int(stored[pivot])
            if factor == 0:
                continue
            self._rows[index] = field.sub(stored, field.scalar_mul(factor, row))
        # Insert keeping rows ordered by pivot column.
        position = 0
        while position < len(self._pivot_of_row) and self._pivot_of_row[position] < pivot:
            position += 1
        self._rows.insert(position, row)
        self._pivot_of_row.insert(position, pivot)

    def __repr__(self) -> str:
        return (
            f"RlncDecoder(rank={self.rank}/{self.k}, q={self.field.order}, "
            f"received={self._received}, helpful={self._helpful})"
        )
