"""Random linear network coding (RLNC) substrate.

The contents map one-to-one onto the "Random Linear Network Coding" paragraph
of Section 2 of the paper: :class:`Generation` holds the ``k`` source messages,
:class:`CodedPacket` is the bounded-size message on the wire,
:class:`RlncDecoder` accumulates linear equations and reports the node's rank,
:class:`RlncEncoder` builds uniform random combinations of everything a node
stores, and :mod:`~repro.rlnc.helpful` implements Definition 3 (helpful nodes
and messages).
"""

from .batch import BatchDecoder
from .decoder import RlncDecoder
from .encoder import RlncEncoder, encode_from_decoder
from .helpful import (
    helpful_message_probability_lower_bound,
    is_helpful_node,
    subspace_dimension_gain,
)
from .message import Generation, SourceMessage
from .packet import CodedPacket

__all__ = [
    "BatchDecoder",
    "RlncDecoder",
    "RlncEncoder",
    "encode_from_decoder",
    "helpful_message_probability_lower_bound",
    "is_helpful_node",
    "subspace_dimension_gain",
    "Generation",
    "SourceMessage",
    "CodedPacket",
]
