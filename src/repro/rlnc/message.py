"""Source messages and generations for random linear network coding.

The paper's setting (Section 2): there are ``k <= n`` initial messages
``x_1 .. x_k``, each represented as a vector in ``F_q^r``.  A *generation* is
the ordered collection of those ``k`` source messages — the unknowns of the
linear system every node eventually solves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DecodingError
from ..gf.field import GaloisField

__all__ = ["SourceMessage", "Generation"]


@dataclass(frozen=True)
class SourceMessage:
    """A single source message: its index in the generation and its payload.

    Attributes
    ----------
    index:
        Position ``i`` of the message within the generation, ``0 <= i < k``.
        The unit coefficient vector ``e_i`` identifies it inside coded packets.
    payload:
        The message content as a vector of ``r`` field elements.
    """

    index: int
    payload: tuple[int, ...]

    def payload_array(self, field: GaloisField) -> np.ndarray:
        """The payload as a validated numpy array of field elements."""
        return field.validate(np.array(self.payload, dtype=np.int64))


class Generation:
    """The full set of ``k`` source messages over a common field.

    The generation owns the ground truth that simulations check decoders
    against: after a protocol completes, every node's decoded matrix must
    equal :attr:`payload_matrix` exactly.
    """

    def __init__(self, field: GaloisField, payloads: np.ndarray) -> None:
        payloads = field.validate(payloads)
        if payloads.ndim != 2:
            raise DecodingError(
                f"generation payloads must be a (k, r) matrix, got shape {payloads.shape}"
            )
        if payloads.shape[0] < 1 or payloads.shape[1] < 1:
            raise DecodingError(
                f"generation requires k >= 1 and r >= 1, got shape {payloads.shape}"
            )
        self.field = field
        self._payloads = payloads.copy()

    # -- construction ---------------------------------------------------
    @classmethod
    def random(
        cls,
        field: GaloisField,
        k: int,
        payload_length: int,
        rng: np.random.Generator,
    ) -> "Generation":
        """A generation of ``k`` uniformly random messages of length ``payload_length``."""
        payloads = field.random_elements(rng, (k, payload_length))
        return cls(field, payloads)

    @classmethod
    def from_values(cls, field: GaloisField, values: list[list[int]]) -> "Generation":
        """Build a generation from explicit payload rows (useful in tests)."""
        return cls(field, np.array(values, dtype=np.int64))

    # -- accessors --------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of source messages."""
        return int(self._payloads.shape[0])

    @property
    def payload_length(self) -> int:
        """Number of field symbols per message (``r`` in the paper)."""
        return int(self._payloads.shape[1])

    @property
    def payload_matrix(self) -> np.ndarray:
        """Copy of the ``(k, r)`` matrix whose rows are the source payloads."""
        return self._payloads.copy()

    def message(self, index: int) -> SourceMessage:
        """The ``index``-th source message."""
        if not 0 <= index < self.k:
            raise DecodingError(
                f"message index {index} out of range for generation of size {self.k}"
            )
        return SourceMessage(index=index, payload=tuple(int(x) for x in self._payloads[index]))

    def messages(self) -> list[SourceMessage]:
        """All source messages, in index order."""
        return [self.message(i) for i in range(self.k)]

    def __len__(self) -> int:
        return self.k

    def __repr__(self) -> str:
        return (
            f"Generation(k={self.k}, r={self.payload_length}, "
            f"q={self.field.order})"
        )
