"""Coded packets: the on-the-wire unit of algebraic gossip.

Every message sent by algebraic gossip is a linear equation over ``F_q``: a
coefficient vector of length ``k`` (one coefficient per source message) and
the corresponding combination of payloads, a vector of length ``r``.  The
packet size is therefore ``(k + r) * log2(q)`` bits, which is exactly the
"bounded message size" regime the paper studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DecodingError
from ..gf.field import GaloisField

__all__ = ["CodedPacket"]


@dataclass(frozen=True)
class CodedPacket:
    """An RLNC-coded packet: coefficients plus combined payload.

    Attributes
    ----------
    coefficients:
        Length-``k`` vector of field elements; entry ``i`` multiplies source
        message ``x_i`` in the linear equation this packet represents.
    payload:
        Length-``r`` vector equal to ``sum_i coefficients[i] * x_i``.
    """

    coefficients: tuple[int, ...]
    payload: tuple[int, ...]

    @classmethod
    def from_arrays(cls, coefficients: np.ndarray, payload: np.ndarray) -> "CodedPacket":
        """Build a packet from numpy arrays of field elements."""
        return cls(
            coefficients=tuple(int(x) for x in np.asarray(coefficients).ravel()),
            payload=tuple(int(x) for x in np.asarray(payload).ravel()),
        )

    @classmethod
    def unit(
        cls, field: GaloisField, k: int, index: int, payload: np.ndarray
    ) -> "CodedPacket":
        """The trivial encoding of source message ``index``: coefficients ``e_index``."""
        if not 0 <= index < k:
            raise DecodingError(f"unit packet index {index} out of range for k={k}")
        coefficients = field.zeros(k)
        coefficients[index] = 1
        return cls.from_arrays(coefficients, field.validate(payload))

    @property
    def k(self) -> int:
        """Generation size this packet was encoded against."""
        return len(self.coefficients)

    @property
    def payload_length(self) -> int:
        """Number of payload symbols."""
        return len(self.payload)

    @property
    def is_zero(self) -> bool:
        """``True`` when all coefficients are zero (the packet carries nothing)."""
        return all(c == 0 for c in self.coefficients)

    def coefficient_array(self, field: GaloisField) -> np.ndarray:
        """Coefficients as a validated numpy array."""
        return field.validate(np.array(self.coefficients, dtype=np.int64))

    def payload_array(self, field: GaloisField) -> np.ndarray:
        """Payload as a validated numpy array."""
        return field.validate(np.array(self.payload, dtype=np.int64))

    def size_in_bits(self, field: GaloisField) -> int:
        """Wire size of the packet in bits: ``(k + r) * ceil(log2 q)``."""
        symbol_bits = max(1, (field.order - 1).bit_length())
        return (self.k + self.payload_length) * symbol_bits

    def __repr__(self) -> str:
        nonzero = sum(1 for c in self.coefficients if c != 0)
        return f"CodedPacket(k={self.k}, r={self.payload_length}, nonzero_coeffs={nonzero})"
