"""RLNC encoding: building outgoing coded packets.

In algebraic gossip "a message is built as a random linear combination of all
messages stored by the node and the coefficients are drawn uniformly at random
from F_q" (Section 2).  Since every node stores its knowledge in an
:class:`~repro.rlnc.decoder.RlncDecoder` (whose rows span exactly the node's
subspace), encoding draws one uniform coefficient per stored row and combines
rows — coefficient parts and payload parts alike.
"""

from __future__ import annotations

import numpy as np

from ..errors import DecodingError
from ..gf.field import GaloisField
from .decoder import RlncDecoder
from .packet import CodedPacket

__all__ = ["RlncEncoder", "encode_from_decoder"]


def encode_from_decoder(
    decoder: RlncDecoder, rng: np.random.Generator
) -> CodedPacket | None:
    """Build a random linear combination of everything ``decoder`` knows.

    Returns ``None`` when the decoder has rank zero — a node that knows
    nothing has nothing to send (transmitting an all-zero packet would be
    equivalent; returning ``None`` lets callers skip the transmission and
    keeps the message counters meaningful).
    """
    if decoder.rank == 0:
        return None
    field = decoder.field
    stored = decoder.augmented_matrix()
    coefficients = field.random_elements(rng, decoder.rank)
    combined = field.dot(coefficients, stored)
    return CodedPacket.from_arrays(combined[: decoder.k], combined[decoder.k :])


class RlncEncoder:
    """Stateful wrapper around :func:`encode_from_decoder`.

    A node's encoder shares the node's decoder (its knowledge base) and a
    random stream.  Keeping a class makes the node objects in the gossip
    engine read naturally (``node.encoder.next_packet()``) and gives a place
    to count emitted packets.
    """

    def __init__(self, decoder: RlncDecoder, rng: np.random.Generator) -> None:
        self.decoder = decoder
        self.rng = rng
        self.packets_emitted = 0

    @property
    def field(self) -> GaloisField:
        """The field packets are coded over."""
        return self.decoder.field

    def next_packet(self) -> CodedPacket | None:
        """Emit one freshly coded packet, or ``None`` if the node knows nothing."""
        packet = encode_from_decoder(self.decoder, self.rng)
        if packet is not None:
            self.packets_emitted += 1
        return packet

    def systematic_packet(self, index: int) -> CodedPacket:
        """Emit the trivial (uncoded) packet for source message ``index``.

        Only valid when the decoder has full knowledge of that message, i.e.
        the unit vector ``e_index`` lies in its row space.  Used by tests and
        by uncoded baselines; algebraic gossip itself never calls this.
        """
        field = self.field
        unit = field.zeros(self.decoder.k)
        unit[index] = 1
        stored = self.decoder.coefficient_matrix()
        from ..gf.linalg import is_in_row_space, solve

        if stored.size == 0 or not is_in_row_space(field, stored, unit):
            raise DecodingError(
                f"node does not know source message {index}; cannot emit it systematically"
            )
        weights = solve(field, stored.T, unit)
        payload = field.dot(weights, self.decoder.augmented_matrix()[:, self.decoder.k :])
        self.packets_emitted += 1
        return CodedPacket.from_arrays(unit, payload)
