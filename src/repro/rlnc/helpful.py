"""Helpfulness predicates (Definition 3 of the paper).

A node ``x`` is *helpful* to a node ``y`` iff a random linear combination
constructed by ``x`` can be linearly independent of everything ``y`` already
stores — equivalently, iff the subspace spanned by ``x``'s equations is not
contained in the subspace spanned by ``y``'s equations.

Lemma 2.1 of Deb et al. (cited as [8] in the paper) lower-bounds the
probability that a packet from a helpful node is a *helpful message* by
``1 - 1/q``; :func:`helpful_message_probability_lower_bound` exposes that
constant because the queueing reduction (Theorem 1) uses it as the service
probability.
"""

from __future__ import annotations

import numpy as np

from ..gf.field import GaloisField
from ..gf.linalg import rank as matrix_rank
from .decoder import RlncDecoder

__all__ = [
    "is_helpful_node",
    "helpful_message_probability_lower_bound",
    "subspace_dimension_gain",
]


def helpful_message_probability_lower_bound(q: int) -> float:
    """The ``1 - 1/q`` lower bound on Pr[packet from a helpful node is helpful]."""
    if q < 2:
        raise ValueError(f"field size must be at least 2, got {q}")
    return 1.0 - 1.0 / q


def _stacked_rank(field: GaloisField, top: np.ndarray, bottom: np.ndarray) -> int:
    if top.size == 0 and bottom.size == 0:
        return 0
    if top.size == 0:
        return matrix_rank(field, bottom)
    if bottom.size == 0:
        return matrix_rank(field, top)
    return matrix_rank(field, np.vstack([top, bottom]))


def is_helpful_node(sender: RlncDecoder, receiver: RlncDecoder) -> bool:
    """Return ``True`` if ``sender`` is a helpful node for ``receiver``.

    Definition 3: the sender can construct a combination independent of the
    receiver's equations, which happens exactly when the sender's subspace is
    not contained in the receiver's subspace.
    """
    if sender.rank == 0:
        return False
    if receiver.is_complete:
        return False
    field = sender.field
    sender_matrix = sender.coefficient_matrix()
    receiver_matrix = receiver.coefficient_matrix()
    joint = _stacked_rank(field, receiver_matrix, sender_matrix)
    return joint > receiver.rank


def subspace_dimension_gain(sender: RlncDecoder, receiver: RlncDecoder) -> int:
    """How many dimensions the receiver could gain from the sender in the limit.

    This is ``dim(span(sender) + span(receiver)) - dim(span(receiver))`` — the
    maximum number of helpful messages the sender could ever provide without
    learning anything new itself.  Used by analysis utilities and tests.
    """
    field = sender.field
    sender_matrix = sender.coefficient_matrix()
    receiver_matrix = receiver.coefficient_matrix()
    joint = _stacked_rank(field, receiver_matrix, sender_matrix)
    return joint - receiver.rank
