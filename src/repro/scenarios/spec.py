"""The declarative scenario layer: one object from CLI to batch engines.

Every experiment in this repository — the paper's tables, the CLI commands,
the sweep cases, the benchmark workloads — is an instance of one shape:

    (topology, size, message placement, protocol, simulation config,
     trial/seed plan)

:class:`ScenarioSpec` captures that shape as a single immutable,
JSON-round-trippable value.  A spec does **not** hold a graph or any live
object; :meth:`ScenarioSpec.materialize` builds the concrete pieces — the
graph, the picklable protocol factory (whose processes declare their own
batch strategy), the analytic bounds, the resolved
:class:`~repro.core.config.SimulationConfig` — as a
:class:`MaterializedScenario`, which can then run trials, produce a
:class:`~repro.analysis.sweep.SweepCase`, or execute a single seeded run.

The same spec therefore drives the same workload through

* the CLI (``python -m repro scenario run <name>`` /
  ``python -m repro run ...``),
* :func:`repro.analysis.sweep.run_sweep` (specs are accepted directly),
* :func:`repro.experiments.parallel.run_trials_batched` /
  :func:`~repro.experiments.parallel.run_trials_parallel`, and
* every benchmark script,

with identical seeded results everywhere — see
``tests/test_scenarios.py::TestSingleSpecDrivesEveryConsumer``.

Scenario axes beyond the paper's model — node churn and heterogeneous
activation rates — are part of the config / spec: churn schedules live in
:attr:`SimulationConfig.churn`, and the :attr:`ScenarioSpec.activation`
recipe is resolved into per-node rates when the graph is known.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from functools import cached_property
from typing import Any, Mapping

import networkx as nx
import numpy as np

from ..analysis.bounds import (
    brr_broadcast_upper_bound,
    constant_degree_upper_bound,
    k_dissemination_lower_bound,
    lemma1_tree_gossip_bound,
    tag_upper_bound,
    tag_with_brr_upper_bound,
    uniform_ag_upper_bound,
)
from ..analysis.sweep import SweepCase
from ..core.config import GossipAction, SimulationConfig, TimeModel
from ..core.results import RunResult, StoppingTimeStats
from ..core.rng import derive_rng
from ..errors import ConfigurationError
from ..gf import GF
from ..gossip.engine import GossipEngine, GossipProcess
from ..graphs.csr import CSRGraph
from ..graphs.csr_builders import build_csr_topology, has_csr_builder
from ..graphs.properties import diameter as graph_diameter
from ..graphs.properties import max_degree as graph_max_degree
from ..graphs.topologies import TOPOLOGY_BUILDERS, build_topology
from ..protocols.algebraic_gossip import AlgebraicGossip, RankOnlyUniformGossip
from ..protocols.is_protocol import ISSpanningTree
from ..protocols.spanning_tree_protocols import (
    BfsOracleTree,
    RoundRobinBroadcastTree,
    UniformBroadcastTree,
)
from ..protocols.tag import TagProtocol
from ..rlnc.message import Generation
from .placements import (
    Placement,
    adversarial_far_placement,
    all_to_all_placement,
    random_placement,
    single_source_placement,
    spread_placement,
)

__all__ = [
    "PROTOCOLS",
    "TREE_PROTOCOLS",
    "PLACEMENTS",
    "ACTIVATION_KINDS",
    "ScenarioSpec",
    "MaterializedScenario",
    "UniformGossipFactory",
    "TagFactory",
    "SpanningTreeFactory",
    "default_scenario_config",
    "scenario_case",
]

#: Spanning-tree protocol registry (the protocol ``S`` plugged into TAG, or
#: run standalone by ``protocol="spanning_tree"`` scenarios).
TREE_PROTOCOLS: dict[str, type] = {
    "brr": RoundRobinBroadcastTree,
    "uniform_broadcast": UniformBroadcastTree,
    "bfs_oracle": BfsOracleTree,
    "is": ISSpanningTree,
}

#: Protocols a scenario can name.
PROTOCOLS = ("uniform", "tag", "spanning_tree")

#: Placement strategies a scenario can name.  ``auto`` resolves to
#: ``all_to_all`` when ``k >= n`` and ``spread`` otherwise — the default the
#: experiments have always used.
PLACEMENTS = (
    "auto",
    "all_to_all",
    "spread",
    "single_source",
    "random",
    "adversarial_far",
)

#: Heterogeneous-activation recipe kinds (see :meth:`ScenarioSpec.activation`).
ACTIVATION_KINDS = ("uniform", "two_speed", "degree", "explicit")


def default_scenario_config(
    *,
    time_model: TimeModel = TimeModel.SYNCHRONOUS,
    field_size: int = 16,
    max_rounds: int = 50_000,
    allow_incomplete: bool = False,
) -> SimulationConfig:
    """The configuration experiments share unless they say otherwise."""
    return SimulationConfig(
        field_size=field_size,
        payload_length=2,
        time_model=time_model,
        action=GossipAction.EXCHANGE,
        max_rounds=max_rounds,
        allow_incomplete=allow_incomplete,
    )


# ----------------------------------------------------------------------
# Picklable protocol factories (shipped to worker processes by the
# parallel trial runner; formerly defined in repro.experiments.runner).
# ----------------------------------------------------------------------
@dataclass
class UniformGossipFactory:
    """Picklable protocol factory for uniform algebraic gossip cases.

    A plain dataclass with ``__call__`` (rather than a closure) so
    :func:`repro.experiments.parallel.run_trials_parallel` can ship it to
    worker processes.  The field object itself is not stored — only its
    order — so pickles stay small and each worker reuses its own cached
    :func:`~repro.gf.GF` tables.
    """

    field_order: int
    k: int
    payload_length: int
    placement: Placement
    config: SimulationConfig

    def __call__(self, graph: nx.Graph, rng: np.random.Generator) -> AlgebraicGossip:
        generation = Generation.random(
            GF(self.field_order), self.k, self.payload_length, rng
        )
        return AlgebraicGossip(graph, generation, self.placement, self.config, rng)

    def rank_only_process(
        self, graph: Any, rng: np.random.Generator
    ) -> RankOnlyUniformGossip:
        """Decoder-less process for the event engine's graph-free pipeline.

        Draws the :class:`~repro.rlnc.message.Generation` from the exact
        ``rng`` position ``__call__`` would, and construction consumes no
        further draws on either path — so a trial built this way is
        stream-identical (hence result-identical) to the decoder-built one.
        """
        generation = Generation.random(
            GF(self.field_order), self.k, self.payload_length, rng
        )
        return RankOnlyUniformGossip(graph, generation, self.placement, self.config, rng)


@dataclass
class SpanningTreeFactory:
    """Picklable factory for spanning-tree protocols (inside TAG or standalone)."""

    protocol: str
    root: int

    def __call__(self, graph: nx.Graph, rng: np.random.Generator):
        if self.protocol == "is":
            return ISSpanningTree(graph, rng)
        return TREE_PROTOCOLS[self.protocol](graph, self.root, rng)


@dataclass
class TagFactory:
    """Picklable protocol factory for TAG sweep cases."""

    field_order: int
    k: int
    payload_length: int
    placement: Placement
    config: SimulationConfig
    spanning_tree: SpanningTreeFactory
    keep_phase1_after_tree: bool = True

    def __call__(self, graph: nx.Graph, rng: np.random.Generator) -> TagProtocol:
        generation = Generation.random(
            GF(self.field_order), self.k, self.payload_length, rng
        )
        return TagProtocol(
            graph,
            generation,
            self.placement,
            self.config,
            rng,
            self.spanning_tree,
            keep_phase1_after_tree=self.keep_phase1_after_tree,
        )


def _as_params(value: Any) -> tuple[tuple[str, Any], ...]:
    """Normalise a params mapping/sequence to a sorted hashable tuple."""
    if isinstance(value, Mapping):
        items = value.items()
    else:
        items = [tuple(pair) for pair in value]
    normalised = []
    for key, item in sorted(items):
        if isinstance(item, list):
            item = tuple(item)
        normalised.append((str(key), item))
    return tuple(normalised)


@dataclass(frozen=True)
class ScenarioSpec:
    """Immutable, JSON-round-trippable description of one simulation scenario.

    Parameters
    ----------
    topology:
        A name from :data:`repro.graphs.TOPOLOGY_BUILDERS`; extra builder
        arguments go into ``topology_params``.
    n:
        Requested node count (some families round it; the materialised
        scenario reports the actual count).
    k:
        Number of source messages; ``None`` means ``k = n`` (all-to-all)
        after topology rounding.
    protocol:
        ``"uniform"`` (uniform algebraic gossip), ``"tag"`` (TAG composed
        with ``spanning_tree``), or ``"spanning_tree"`` (the tree protocol
        run standalone, as in the Theorem 5 broadcast measurements).
    spanning_tree:
        Which tree protocol TAG composes with / runs standalone: a name from
        :data:`TREE_PROTOCOLS`.
    placement:
        A name from :data:`PLACEMENTS`; extra arguments (e.g. the
        ``single_source`` node) go into ``placement_params``.
    activation:
        Heterogeneous-activation recipe, resolved against the materialised
        graph: ``()`` / ``kind="uniform"`` for the paper's uniform clocks,
        ``kind="two_speed"`` (``ratio``, ``fast_fraction``) makes the first
        ``fast_fraction`` of node positions ``ratio``-times faster,
        ``kind="degree"`` makes each node's rate proportional to its degree,
        ``kind="explicit"`` takes ``rates`` verbatim.  Asynchronous time
        model only.
    config:
        The :class:`~repro.core.config.SimulationConfig` (time model, field
        size, loss, churn schedule, ...).
    trials, seed:
        The Monte Carlo plan: how many independent trials, and the root seed
        every trial generator derives from.
    name, description:
        Registry identity and one-line purpose (empty for ad-hoc specs).
    backend:
        Compute backend the trials run under: a name from
        :func:`repro.backends.all_backends`, or ``""`` (default) for the
        ambient backend (``$REPRO_BACKEND`` or ``numpy``).  Backends are
        bit-identical by contract, so the choice never affects results —
        it is excluded from :meth:`fingerprint` and the
        :class:`~repro.store.ResultStore` cache is backend-invariant.
    engine:
        Which engine family runs the trials: ``""`` (default) lets the trial
        runners choose (batch fast path when eligible, sequential otherwise),
        ``"scalar"`` forces the sequential :class:`~repro.gossip.GossipEngine`,
        ``"batch"`` requires the lockstep batch fast path, ``"event"``
        requires the event-driven sparse engine
        (:class:`~repro.gossip.EventGossipEngine`).  Engines are bit-identical
        by contract (asserted by ``tests/test_event_engine.py`` and the batch
        equivalence suite), so the choice never affects results and is
        excluded from :meth:`fingerprint`; a named engine that cannot run the
        workload refuses eagerly — ``"batch"`` with reset-mode churn and
        ``"event"`` with a non-uniform protocol are rejected here, anything
        discovered later raises :class:`~repro.errors.EngineError` instead of
        falling back silently.

    Examples
    --------
    Specs are plain JSON values with an exact round trip:

    >>> spec = ScenarioSpec(topology="ring", n=8, k=4, trials=3, seed=7)
    >>> ScenarioSpec.from_json(spec.to_json()) == spec
    True

    The fingerprint addresses the *workload*: the Monte Carlo plan and the
    registry identity do not change it, any result-affecting field does
    (this is the shard key of :class:`repro.store.ResultStore`):

    >>> spec.fingerprint() == spec.replace(trials=100, name="renamed").fingerprint()
    True
    >>> spec.fingerprint() == spec.replace(n=16).fingerprint()
    False

    Materialisation resolves the concrete graph and message counts:

    >>> scenario = spec.materialize()
    >>> scenario.n, scenario.k
    (8, 4)
    """

    topology: str = "ring"
    n: int = 16
    k: int | None = None
    protocol: str = "uniform"
    spanning_tree: str = "brr"
    placement: str = "auto"
    topology_params: tuple[tuple[str, Any], ...] = ()
    placement_params: tuple[tuple[str, Any], ...] = ()
    activation: tuple[tuple[str, Any], ...] = ()
    keep_phase1_after_tree: bool = True
    config: SimulationConfig = field(default_factory=SimulationConfig)
    trials: int = 5
    seed: int = 0
    name: str = ""
    description: str = ""
    backend: str = ""
    engine: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "topology_params", _as_params(self.topology_params))
        object.__setattr__(self, "placement_params", _as_params(self.placement_params))
        object.__setattr__(self, "activation", _as_params(self.activation))
        if isinstance(self.config, Mapping):
            object.__setattr__(self, "config", SimulationConfig.from_dict(dict(self.config)))
        if not isinstance(self.config, SimulationConfig):
            raise ConfigurationError(
                f"config must be a SimulationConfig or a mapping, "
                f"got {type(self.config).__name__}"
            )
        if self.topology not in TOPOLOGY_BUILDERS:
            raise ConfigurationError(
                f"unknown topology {self.topology!r}; known: {sorted(TOPOLOGY_BUILDERS)}"
            )
        if self.protocol not in PROTOCOLS:
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r}; known: {sorted(PROTOCOLS)}"
            )
        if self.spanning_tree not in TREE_PROTOCOLS:
            raise ConfigurationError(
                f"unknown spanning tree protocol {self.spanning_tree!r}; "
                f"known: {sorted(TREE_PROTOCOLS)}"
            )
        if self.placement not in PLACEMENTS:
            raise ConfigurationError(
                f"unknown placement {self.placement!r}; known: {sorted(PLACEMENTS)}"
            )
        if self.n < 2:
            raise ConfigurationError(f"scenario needs n >= 2, got {self.n}")
        if self.k is not None and self.k < 1:
            raise ConfigurationError(f"scenario k must be positive, got {self.k}")
        if self.trials < 1:
            raise ConfigurationError(f"scenario trials must be positive, got {self.trials}")
        activation = dict(self.activation)
        kind = activation.pop("kind", "uniform")
        if kind not in ACTIVATION_KINDS:
            raise ConfigurationError(
                f"unknown activation kind {kind!r}; known: {sorted(ACTIVATION_KINDS)}"
            )
        if kind == "uniform" and activation:
            raise ConfigurationError(
                f"activation parameters {sorted(activation)} require an "
                "explicit non-uniform 'kind' (did you forget it?)"
            )
        if kind != "uniform" and self.config.time_model is TimeModel.SYNCHRONOUS:
            raise ConfigurationError(
                "heterogeneous activation requires the asynchronous time model"
            )
        if self.config.churn_reset and self.protocol == "spanning_tree":
            raise ConfigurationError(
                "spanning-tree protocols do not support churn_reset (they "
                "have no resettable per-node knowledge); use pause-mode churn"
            )
        if self.engine not in ("", "scalar", "batch", "event"):
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; "
                "known: ['', 'batch', 'event', 'scalar']"
            )
        if self.engine == "batch" and self.config.churn_reset:
            raise ConfigurationError(
                "the batch engines do not support reset-mode churn; use "
                "engine='event' (or the scalar engine) for churn_reset"
            )
        if self.engine == "event" and self.protocol != "uniform":
            raise ConfigurationError(
                f"the event-driven engine runs uniform algebraic gossip only; "
                f"protocol {self.protocol!r} must use the scalar or batch engines"
            )
        if self.backend:
            # Fail at construction, not mid-sweep: the backend must exist and
            # must support the scenario's field.
            from ..backends import all_backends, get_backend
            from ..errors import BackendError
            from ..gf import GF

            try:
                resolved = get_backend(self.backend)
            except BackendError:
                raise ConfigurationError(
                    f"unknown backend {self.backend!r}; "
                    f"known: {sorted(all_backends())}"
                ) from None
            if not resolved.supports_field(GF(self.config.field_size)):
                raise ConfigurationError(
                    f"backend {self.backend!r} does not support "
                    f"GF({self.config.field_size}); choose a supporting "
                    "backend or change field_size"
                )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def replace(self, **changes: Any) -> "ScenarioSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def with_config(self, **changes: Any) -> "ScenarioSpec":
        """Return a copy with ``changes`` applied to the nested config."""
        return replace(self, config=self.config.replace(**changes))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation; inverse of :meth:`from_dict`.

        Defaulted fields are omitted; the nested config serialises through
        :meth:`SimulationConfig.to_dict`; params tuples become objects.
        """
        defaults = ScenarioSpec()
        data: dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if value == getattr(defaults, spec_field.name):
                continue
            if spec_field.name == "config":
                value = value.to_dict()
            elif spec_field.name in ("topology_params", "placement_params", "activation"):
                value = {
                    key: list(item) if isinstance(item, tuple) else item
                    for key, item in value
                }
            data[spec_field.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (extra keys rejected)."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown ScenarioSpec fields {sorted(unknown)}; known: {sorted(known)}"
            )
        kwargs = dict(data)
        if "config" in kwargs and isinstance(kwargs["config"], Mapping):
            kwargs["config"] = SimulationConfig.from_dict(dict(kwargs["config"]))
        return cls(**kwargs)

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialise to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ConfigurationError("a scenario JSON document must be an object")
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Content addressing (the result store's key)
    # ------------------------------------------------------------------
    def fingerprint_payload(self) -> dict[str, Any]:
        """The canonical dictionary :meth:`fingerprint` hashes.

        Identity fields (``name``, ``description``) and the Monte Carlo plan
        (``trials``, ``seed``) are excluded: the fingerprint addresses the
        *workload* — what one seeded trial computes — so a re-run with more
        trials, a different root seed, or under a different registry name
        still hits the same cached trial records (records are keyed by
        fingerprint **plus** the trial's root seed and index; see
        :mod:`repro.store`).

        The one exception is the ``random`` placement, whose message
        placement is drawn at materialisation time from the spec's own seed:
        there the seed genuinely changes the workload, so it is folded back
        in as ``materialize_seed``.

        ``backend`` is likewise excluded: backends are bit-identical by
        contract (enforced by the conformance suite), so results computed
        under ``numpy`` and ``gf2bit`` are interchangeable cache entries.
        So is ``engine``: all engine families produce bit-identical per-seed
        results (asserted by the equivalence suites), so scalar, batch and
        event-driven runs are interchangeable cache entries too.
        """
        payload = self.to_dict()
        for excluded in ("trials", "seed", "name", "description", "backend", "engine"):
            payload.pop(excluded, None)
        if self.placement == "random":
            payload["materialize_seed"] = self.seed
        return payload

    def fingerprint(self) -> str:
        """Stable content address of this workload: sha256 of canonical JSON.

        Two specs that describe the same workload — regardless of trial
        count, root seed (except ``random`` placements), name or construction
        order of their params — share a fingerprint; any change to a field
        that affects results (topology, n, k, protocol, config knobs, ...)
        changes it.  This is the shard key of
        :class:`repro.store.ResultStore`.

        Memoised per instance (the spec is immutable and store-aware runners
        address it once per trial); ``replace()`` returns a new instance, so
        the cache can never go stale.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            canonical = json.dumps(
                self.fingerprint_payload(), sort_keys=True, separators=(",", ":")
            )
            cached = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
            # Frozen dataclass: write the memo through __dict__ (not setattr).
            self.__dict__["_fingerprint"] = cached
        return cached

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def materialize(self) -> "MaterializedScenario":
        """Build the graph, protocol factory and bounds this spec describes.

        Materialisation is deterministic: every stochastic ingredient (e.g. a
        ``random`` placement) derives from :attr:`seed`, so the same spec
        always yields the same workload.
        """
        graph = build_topology(self.topology, self.n, **dict(self.topology_params))
        return self._materialize_from_graph(graph)

    def materialize_csr(self) -> "MaterializedScenario":
        """Materialise through the direct-CSR pipeline: no ``nx.Graph`` ever.

        The graph is built straight to ``(indptr, indices)`` by the family's
        direct-CSR builder — byte-identical per seed to
        ``csr_adjacency(networkx_builder(...))``, the contract every builder
        is tested against — and the protocol factory's decoder-less
        ``rank_only_process`` feeds the event engine.  Per-seed results are
        bit-identical to :meth:`materialize`; only peak memory and
        materialisation time differ.

        Only workloads the event engine can replay qualify: the spec must pin
        ``engine="event"`` and ``protocol="uniform"``, and the topology family
        must have a direct-CSR builder — anything else raises
        :class:`~repro.errors.ConfigurationError` (use :meth:`materialize`).
        """
        if self.protocol != "uniform":
            raise ConfigurationError(
                f"materialize_csr runs uniform algebraic gossip only, got "
                f"protocol {self.protocol!r}; use materialize() instead"
            )
        if self.engine != "event":
            raise ConfigurationError(
                "materialize_csr requires engine='event' (the CSR pipeline "
                "feeds the event-driven engine only); use materialize() or "
                "set engine='event' on the spec"
            )
        if not has_csr_builder(self.topology):
            raise ConfigurationError(
                f"topology {self.topology!r} has no direct-CSR builder; "
                "use materialize() for the networkx pipeline"
            )
        graph = build_csr_topology(
            self.topology, self.n, **dict(self.topology_params)
        )
        return self._materialize_from_graph(graph)

    def uses_csr_pipeline(self) -> bool:
        """Whether :meth:`materialize_preferred` would take the CSR pipeline."""
        return (
            self.engine == "event"
            and self.protocol == "uniform"
            and has_csr_builder(self.topology)
        )

    def materialize_preferred(self) -> "MaterializedScenario":
        """Materialise through the cheapest eligible pipeline.

        Routes to :meth:`materialize_csr` when the workload qualifies for
        the graph-free pipeline (event engine, uniform protocol, a direct
        CSR builder for the topology family) and to :meth:`materialize`
        otherwise.  Per-seed results are bit-identical either way — only
        materialisation time and peak RSS differ — which makes this the
        right default wherever large-n workloads may flow through (the CLI
        trial runners, the campaign runner's summary units).
        """
        if self.uses_csr_pipeline():
            return self.materialize_csr()
        return self.materialize()

    def _materialize_from_graph(
        self, graph: "nx.Graph | CSRGraph"
    ) -> "MaterializedScenario":
        """Shared tail of both materialisation pipelines (k resolution on)."""
        actual_n = graph.number_of_nodes()
        if self.k is None:
            actual_k = actual_n
        elif self.placement == "auto":
            # The convenience placement caps k at the (possibly rounded)
            # node count — the semantics the case builders always had.
            actual_k = min(self.k, actual_n)
        elif self.placement == "all_to_all":
            if self.k != actual_n:
                raise ConfigurationError(
                    f"all_to_all places exactly one message per node, so k "
                    f"must equal n: omit k or set k={actual_n} (got k={self.k})"
                )
            actual_k = actual_n
        elif self.placement == "spread":
            if self.k > actual_n:
                raise ConfigurationError(
                    f"spread places at most one message per node; "
                    f"k={self.k} exceeds n={actual_n}"
                )
            actual_k = self.k
        else:
            # single_source / random / adversarial_far place multiple
            # messages per node; k > n is a legitimate workload.
            actual_k = self.k
        config = self._resolve_activation(graph)
        placement = self._resolve_placement(graph, actual_k)
        root = 0 if isinstance(graph, CSRGraph) else sorted(graph.nodes())[0]
        if self.protocol == "uniform":
            factory: Any = UniformGossipFactory(
                field_order=config.field_size,
                k=actual_k,
                payload_length=config.payload_length,
                placement=placement,
                config=config,
            )
        elif self.protocol == "tag":
            factory = TagFactory(
                field_order=config.field_size,
                k=actual_k,
                payload_length=config.payload_length,
                placement=placement,
                config=config,
                spanning_tree=SpanningTreeFactory(
                    protocol=self.spanning_tree, root=root
                ),
                keep_phase1_after_tree=self.keep_phase1_after_tree,
            )
        else:
            factory = SpanningTreeFactory(protocol=self.spanning_tree, root=root)
        return MaterializedScenario(
            spec=self,
            graph=graph,
            n=actual_n,
            k=actual_k,
            placement=placement,
            config=config,
            protocol_factory=factory,
            root=root,
        )

    _PLACEMENT_PARAMS = {"single_source": {"source"}, "adversarial_far": {"target"}}

    def _resolve_placement(self, graph: nx.Graph, k: int) -> Placement:
        params = dict(self.placement_params)
        name = self.placement
        if name == "auto":
            name = "all_to_all" if k >= graph.number_of_nodes() else "spread"
        unknown = set(params) - self._PLACEMENT_PARAMS.get(name, set())
        if unknown:
            raise ConfigurationError(
                f"unknown placement parameters {sorted(unknown)} for "
                f"placement {self.placement!r}"
            )
        if name == "all_to_all":
            return all_to_all_placement(graph)
        if name == "spread":
            return spread_placement(graph, k)
        if name == "single_source":
            return single_source_placement(graph, k, **params)
        if name == "adversarial_far":
            params.setdefault(
                "target", 0 if isinstance(graph, CSRGraph) else sorted(graph.nodes())[0]
            )
            return adversarial_far_placement(graph, k, **params)
        return random_placement(graph, k, derive_rng(self.seed, "placement"))

    def _resolve_activation(self, graph: nx.Graph) -> SimulationConfig:
        """Resolve the activation recipe into concrete per-node rates."""
        params = dict(self.activation)
        kind = params.pop("kind", "uniform")
        if kind == "uniform":
            return self.config
        if self.config.activation_rates:
            raise ConfigurationError(
                "give either an activation recipe or explicit "
                "config.activation_rates, not both"
            )
        nodes = graph.nodes() if isinstance(graph, CSRGraph) else sorted(graph.nodes())
        n = len(nodes)
        if kind == "two_speed":
            ratio = float(params.pop("ratio", 4.0))
            fast_fraction = float(params.pop("fast_fraction", 0.5))
            if ratio <= 0:
                raise ConfigurationError(f"two_speed ratio must be positive, got {ratio}")
            if not 0.0 < fast_fraction < 1.0:
                raise ConfigurationError(
                    f"two_speed fast_fraction must lie in (0, 1), got {fast_fraction}"
                )
            fast = max(1, int(round(n * fast_fraction)))
            rates = tuple(ratio if pos < fast else 1.0 for pos in range(n))
        elif kind == "degree":
            rates = tuple(float(graph.degree[node]) for node in nodes)
        else:  # explicit
            rates = tuple(float(r) for r in params.pop("rates", ()))
            if len(rates) != n:
                raise ConfigurationError(
                    f"explicit activation rates have {len(rates)} entries but "
                    f"the materialised graph has {n} nodes"
                )
        if params:
            raise ConfigurationError(
                f"unknown activation parameters {sorted(params)} for kind {kind!r}"
            )
        return self.config.replace(activation_rates=rates)

    def _bounds(
        self, graph: nx.Graph, n: int, k: int, config: SimulationConfig
    ) -> dict[str, float]:
        """The analytic bounds attached to sweep points for this protocol."""
        if isinstance(graph, CSRGraph):
            raise ConfigurationError(
                "analytic bounds need the networkx pipeline (graph diameter "
                "and degree properties); use ScenarioSpec.materialize() "
                "instead of materialize_csr() for sweeps with bounds"
            )
        diameter_value = graph_diameter(graph)
        if self.protocol == "uniform":
            delta = graph_max_degree(graph)
            bounds = {
                "theorem1": uniform_ag_upper_bound(n, k, diameter_value, delta),
                "lower": k_dissemination_lower_bound(
                    k, diameter_value, synchronous=config.is_synchronous
                ),
            }
            if delta <= 8:
                bounds["theorem3"] = constant_degree_upper_bound(k, diameter_value)
            return bounds
        if self.protocol == "tag":
            return {
                "theorem4": tag_upper_bound(
                    n, k, 2 * diameter_value, brr_broadcast_upper_bound(n)
                ),
                "lower": k_dissemination_lower_bound(
                    k, diameter_value, synchronous=config.is_synchronous
                ),
                "tag_brr": tag_with_brr_upper_bound(n, k),
                "lemma1": lemma1_tree_gossip_bound(n, k, diameter_value),
            }
        return {"broadcast_3n": brr_broadcast_upper_bound(n)}


@dataclass(frozen=True, eq=False)  # eq=False: dict/graph fields → identity hash/eq
class MaterializedScenario:
    """A :class:`ScenarioSpec` resolved into live objects, ready to run.

    Carries the concrete graph (with the topology family's rounding applied),
    the resolved config (activation recipe → per-node rates), the initial
    placement and the picklable protocol factory; the analytic
    :attr:`bounds` are computed lazily (they need graph diameter — an
    all-pairs BFS that plain trial runs should not pay for).  The batch
    strategy is *not* chosen here: each trial's process declares its own
    through :meth:`~repro.gossip.engine.GossipProcess.batch_strategy`, and
    the trial runners apply the config support matrix
    (:func:`~repro.gossip.batch.batch_supports_config`) on top.
    """

    spec: ScenarioSpec
    graph: "nx.Graph | CSRGraph"
    n: int
    k: int
    placement: Placement
    config: SimulationConfig
    protocol_factory: Any
    root: int

    @cached_property
    def bounds(self) -> dict[str, float]:
        """The analytic bounds for this protocol (computed on first access)."""
        return self.spec._bounds(self.graph, self.n, self.k, self.config)

    @property
    def pipeline(self) -> str:
        """Which topology pipeline served this scenario: ``csr`` or ``networkx``."""
        return "csr" if isinstance(self.graph, CSRGraph) else "networkx"

    @property
    def label(self) -> str:
        """Human-readable label built from the *materialised* sizes.

        Uses the actual node/message counts (after topology rounding and k
        resolution), so labels always name the workload that really runs.
        """
        spec = self.spec
        if spec.name:
            return spec.name
        if spec.protocol == "uniform":
            return f"{spec.topology}(n={self.n}, k={self.k})"
        if spec.protocol == "tag":
            return f"TAG+{spec.spanning_tree} {spec.topology}(n={self.n}, k={self.k})"
        return f"{spec.spanning_tree} tree {spec.topology}(n={self.n})"

    def build_process(self, rng: np.random.Generator) -> GossipProcess:
        """One fresh protocol instance drawing its setup from ``rng``.

        Routed through :func:`~repro.gossip.event.build_event_process` so a
        CSR-materialised scenario builds the decoder-less rank-only process;
        on the networkx pipeline this is exactly ``protocol_factory(graph,
        rng)`` as before.
        """
        from ..gossip.event import build_event_process

        return build_event_process(self.graph, self.protocol_factory, rng)

    def batch_strategy(self):
        """The batch executor this scenario's trials would use, or ``None``.

        ``None`` means the sequential engine: either the protocol declares no
        vectorised executor, or the config uses a knob outside the batch
        support matrix (reset-mode churn).
        """
        from ..experiments.parallel import scenario_batch_strategy

        return scenario_batch_strategy(self)

    def sweep_case(
        self,
        *,
        label: str | None = None,
        value: float | None = None,
        bounds: Mapping[str, float] | None = None,
    ) -> SweepCase:
        """This scenario as one case of a parameter sweep."""
        return SweepCase(
            label=label or self.label,
            value=float(self.n if value is None else value),
            graph=self.graph,
            protocol_factory=self.protocol_factory,
            config=self.config,
            bounds=dict(self.bounds if bounds is None else bounds),
            spec=self.spec,
        )

    def measure(
        self,
        *,
        trials: int | None = None,
        seed: int | None = None,
        jobs: int | None = None,
        batch: bool = True,
        store: Any = None,
        fresh: bool = False,
    ) -> list[RunResult]:
        """Run the Monte Carlo plan and return every per-trial result.

        ``seed`` overrides the trial streams only: materialisation-time
        ingredients (a ``random`` placement, activation rates) were already
        fixed from the spec's seed.  To re-derive those too, materialise
        ``spec.replace(seed=...)`` instead — the CLI's ``--seed`` does that.

        ``store`` (a :class:`~repro.store.ResultStore`) reads cached
        ``(fingerprint, seed, trial)`` records back instead of recomputing
        them and persists whatever had to be computed; ``fresh=True``
        bypasses the reads.
        """
        from ..experiments.parallel import measure_protocol_parallel

        return measure_protocol_parallel(
            self.graph,
            self.protocol_factory,
            self.config,
            trials=self.spec.trials if trials is None else trials,
            seed=self.spec.seed if seed is None else seed,
            jobs=1 if jobs is None else jobs,
            batch=batch,
            store=store,
            fresh=fresh,
            spec=self.spec,
        )

    def run(
        self,
        *,
        trials: int | None = None,
        seed: int | None = None,
        jobs: int | None = None,
        batch: bool = True,
        store: Any = None,
        fresh: bool = False,
    ) -> StoppingTimeStats:
        """Run the Monte Carlo plan and aggregate the stopping-time statistics."""
        from ..core.results import aggregate_results

        return aggregate_results(
            self.measure(
                trials=trials, seed=seed, jobs=jobs, batch=batch,
                store=store, fresh=fresh,
            )
        )

    def run_single(
        self, *, seed: int | None = None, store: Any = None, fresh: bool = False
    ) -> RunResult:
        """One single-trial run — exactly trial 0 of the Monte Carlo plan.

        Runs the sequential engine unless the spec pins another engine family
        (all families are bit-identical per seed, so the choice never changes
        the result).  With a ``store``, trial 0 is served from (and persisted
        to) the same ``(fingerprint, seed, trial)`` records the batch runners
        use — engine-invariantly, like the cache itself.
        """
        from ..backends import use_backend

        effective_seed = self.spec.seed if seed is None else seed
        if store is not None and not fresh:
            cached = store.get(self.spec, 0, seed=effective_seed)
            if cached is not None:
                return cached
        engine = getattr(self.spec, "engine", "") or ""
        rng = derive_rng(effective_seed, "trial-0")
        with use_backend(self.spec.backend):
            process = self.build_process(rng)
            if engine == "event":
                from ..gossip.event import EventGossipEngine

                result = EventGossipEngine(self.graph, process, self.config, rng).run()
            elif engine == "batch":
                from ..errors import EngineError
                from ..gossip.batch import batch_supports_config

                strategy = process.batch_strategy()
                if strategy is None or not batch_supports_config(self.config):
                    raise EngineError(
                        f"the batch engines cannot run scenario "
                        f"{self.label!r}; drop engine='batch' or pick "
                        "'scalar'/'event'"
                    )
                result = strategy(self.graph, [process], self.config, [rng])[0]
            else:
                result = GossipEngine(self.graph, process, self.config, rng).run()
        if store is not None:
            store.put(self.spec, 0, result, seed=effective_seed)
        return result


def scenario_case(
    spec: "ScenarioSpec | str",
    *,
    label: str | None = None,
    value: float | None = None,
    **overrides: Any,
) -> SweepCase:
    """Materialise a spec (or registered scenario name) into a sweep case.

    ``overrides`` are applied with :meth:`ScenarioSpec.replace` first, so a
    benchmark can take a registered scenario and vary one axis::

        scenario_case("tag/brr-barbell", n=32, k=32, value=32)
    """
    if isinstance(spec, str):
        from .registry import get_scenario

        spec = get_scenario(spec)
    if overrides:
        spec = spec.replace(**overrides)
    return spec.materialize().sweep_case(label=label, value=value)
