"""Named-scenario registry: the workloads this repository ships with.

Every entry is a small, CI-sized :class:`~repro.scenarios.ScenarioSpec` that
materialises and runs in seconds.  The names are hierarchical
(``family/variant``) and drive the CLI::

    python -m repro scenario list
    python -m repro scenario show tag/brr-barbell --json
    python -m repro scenario run churn/ring-crash-restart --trials 8

The registry is the single source of truth consumed by the experiment
definitions, the benchmarks and ``make scenarios-check`` (which materialises
and smoke-runs every entry).  Registering is open: library users call
:func:`register_scenario` with their own spec to make it addressable by name.
"""

from __future__ import annotations

import difflib
from typing import Iterable

from ..core.config import SimulationConfig, TimeModel
from ..errors import ConfigurationError
from .spec import ScenarioSpec, default_scenario_config

__all__ = [
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "suggest_names",
]


def suggest_names(name: str, known: Iterable[str]) -> str:
    """A ``"; did you mean 'x'?"`` suffix for unknown-name errors (or ``""``).

    Shared by every registry lookup (scenarios, campaigns, store prefixes)
    so a typo'd CLI name always fails with a close-match suggestion instead
    of a bare list dump.

    >>> suggest_names("tag/brr-barbel", ["tag/brr-barbell", "uniform/grid"])
    "; did you mean 'tag/brr-barbell'?"
    >>> suggest_names("zzz", ["uniform/line"])
    ''
    """
    matches = difflib.get_close_matches(name, list(known), n=3, cutoff=0.5)
    if not matches:
        return ""
    if len(matches) == 1:
        return f"; did you mean {matches[0]!r}?"
    alternatives = " or ".join(repr(match) for match in matches)
    return f"; did you mean {alternatives}?"

#: Name → spec.  Populated below; extendable through :func:`register_scenario`.
SCENARIOS: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, *, overwrite: bool = False) -> ScenarioSpec:
    """Add a named spec to the registry and return it."""
    if not spec.name:
        raise ConfigurationError("a registered scenario needs a non-empty name")
    if spec.name in SCENARIOS and not overwrite:
        raise ConfigurationError(
            f"scenario {spec.name!r} is already registered (pass overwrite=True)"
        )
    SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look a scenario up by name.

    An unknown name raises :class:`~repro.errors.ConfigurationError` (never a
    raw ``KeyError``) with a close-match suggestion, so CLI typos exit with
    ``error: unknown scenario ...; did you mean ...?`` instead of a traceback.
    """
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}{suggest_names(name, SCENARIOS)} "
            f"(run 'python -m repro scenario list' for all "
            f"{len(SCENARIOS)} registered names)"
        ) from None


def scenario_names() -> list[str]:
    """Sorted names of every registered scenario."""
    return sorted(SCENARIOS)


# ----------------------------------------------------------------------
# Built-in scenarios.  Sizes are CI-friendly; benchmarks scale them up with
# ScenarioSpec.replace(...).
# ----------------------------------------------------------------------
_CONFIG = default_scenario_config()
_ASYNC = default_scenario_config(time_model=TimeModel.ASYNCHRONOUS)

# --- Theorem 1 (Table 1, row "Uniform AG, any graph") -------------------
for _topology in ("line", "ring", "grid", "complete", "binary_tree", "barbell"):
    register_scenario(
        ScenarioSpec(
            name=f"uniform/{_topology}",
            description=f"Theorem 1: uniform algebraic gossip on {_topology}(16), k=8",
            topology=_topology,
            n=16,
            k=8,
            config=_CONFIG,
        )
    )

# --- Theorem 3 (constant-degree Θ(k + D)) -------------------------------
register_scenario(
    ScenarioSpec(
        name="uniform/ring-all-to-all",
        description="Theorem 3: uniform AG on the ring, k = n (the Θ(k + D) regime)",
        topology="ring",
        n=16,
        config=_CONFIG,
    )
)

# --- Section 1.1 (barbell worst case) -----------------------------------
register_scenario(
    ScenarioSpec(
        name="uniform/barbell-worst-case",
        description="Section 1.1: uniform AG on the barbell, k = n (the Ω(n²) regime)",
        topology="barbell",
        n=12,
        config=default_scenario_config(max_rounds=200_000),
    )
)

# --- Theorem 4 / Section 5 / Theorems 7-8 (TAG rows) --------------------
register_scenario(
    ScenarioSpec(
        name="tag/brr-barbell",
        description="Theorem 4 / Section 5: TAG + B_RR on the barbell, k = n",
        topology="barbell",
        n=16,
        protocol="tag",
        spanning_tree="brr",
        config=_CONFIG,
    )
)
register_scenario(
    ScenarioSpec(
        name="tag/uniform-broadcast-barbell",
        description="Theorem 4: TAG + uniform broadcast tree on the barbell, k = n",
        topology="barbell",
        n=16,
        protocol="tag",
        spanning_tree="uniform_broadcast",
        config=_CONFIG,
    )
)
register_scenario(
    ScenarioSpec(
        name="tag/brr-grid",
        description="Theorem 4: TAG + B_RR on the grid, k = n",
        topology="grid",
        n=16,
        protocol="tag",
        spanning_tree="brr",
        config=_CONFIG,
    )
)
register_scenario(
    ScenarioSpec(
        name="tag/brr-barbell-async",
        description="Theorem 4 under asynchronous timeslots: TAG + B_RR on the barbell",
        topology="barbell",
        n=16,
        protocol="tag",
        spanning_tree="brr",
        config=_ASYNC,
    )
)
register_scenario(
    ScenarioSpec(
        name="tag/is-barbell",
        description="Theorems 7-8: TAG + IS on the barbell (large weak conductance)",
        topology="barbell",
        n=16,
        protocol="tag",
        spanning_tree="is",
        config=_CONFIG,
    )
)
register_scenario(
    ScenarioSpec(
        name="tag/is-clique-chain",
        description="Theorems 7-8: TAG + IS on the 4-clique chain",
        topology="clique_chain",
        n=16,
        protocol="tag",
        spanning_tree="is",
        topology_params={"cliques": 4},
        config=_CONFIG,
    )
)

# --- Theorem 5 (standalone B_RR broadcast) ------------------------------
register_scenario(
    ScenarioSpec(
        name="tree/brr-broadcast-barbell",
        description="Theorem 5: standalone B_RR broadcast tree on the barbell (≤ 3n rounds)",
        topology="barbell",
        n=16,
        protocol="spanning_tree",
        spanning_tree="brr",
        config=SimulationConfig(max_rounds=10_000),
    )
)
register_scenario(
    ScenarioSpec(
        name="tree/is-clique-chain",
        description="Section 6: standalone IS spanning-tree construction on the clique chain",
        topology="clique_chain",
        n=16,
        protocol="spanning_tree",
        spanning_tree="is",
        topology_params={"cliques": 4},
        config=SimulationConfig(max_rounds=10_000),
    )
)

# --- Churn scenarios (crash/restart schedules) --------------------------
register_scenario(
    ScenarioSpec(
        name="churn/ring-crash-restart",
        description=(
            "Uniform AG on the ring with two staggered crash/restart windows "
            "(pause semantics: state survives the crash)"
        ),
        topology="ring",
        n=16,
        config=_CONFIG.replace(churn=((3, 2, 10), (11, 6, 14))),
    )
)
register_scenario(
    ScenarioSpec(
        name="churn/async-complete-blackout",
        description=(
            "Uniform AG on the complete graph, asynchronous, with a quarter "
            "of the nodes down for an early window"
        ),
        topology="complete",
        n=16,
        config=_ASYNC.replace(churn=tuple((node, 2, 12) for node in range(4))),
    )
)
register_scenario(
    ScenarioSpec(
        name="churn/tag-brr-barbell",
        description="TAG + B_RR on the barbell with a mid-run crash of a clique node",
        topology="barbell",
        n=16,
        protocol="tag",
        spanning_tree="brr",
        config=_CONFIG.replace(churn=((5, 4, 20),)),
    )
)
register_scenario(
    ScenarioSpec(
        name="churn/ring-reset",
        description=(
            "Reset-mode churn: a crashing node loses its decoder state and "
            "rejoins with only its initial messages (sequential engine — "
            "outside the batch support matrix)"
        ),
        topology="ring",
        n=12,
        config=_CONFIG.replace(churn=((4, 3, 9),), churn_reset=True),
    )
)

# --- Heterogeneous activation rates (asynchronous clocks) ---------------
register_scenario(
    ScenarioSpec(
        name="hetero/two-speed-ring",
        description=(
            "Uniform AG on the ring, asynchronous, with half the nodes "
            "activating 4x faster than the rest"
        ),
        topology="ring",
        n=16,
        activation={"kind": "two_speed", "ratio": 4.0, "fast_fraction": 0.5},
        config=_ASYNC,
    )
)
register_scenario(
    ScenarioSpec(
        name="hetero/degree-star",
        description=(
            "Uniform AG on the star, asynchronous, activation rate "
            "proportional to degree (the hub dominates the clock)"
        ),
        topology="star",
        n=16,
        activation={"kind": "degree"},
        config=_ASYNC,
    )
)
register_scenario(
    ScenarioSpec(
        name="hetero/churned-two-speed-complete",
        description=(
            "Both new axes at once: two-speed asynchronous clocks plus a "
            "crash/restart window on the complete graph"
        ),
        topology="complete",
        n=16,
        activation={"kind": "two_speed", "ratio": 3.0, "fast_fraction": 0.25},
        config=_ASYNC.replace(churn=((2, 3, 9),)),
    )
)

# --- Robustness (packet loss, kept from the paper-adjacent extensions) --
register_scenario(
    ScenarioSpec(
        name="robustness/lossy-grid",
        description="Uniform AG on the grid under 25% independent packet loss",
        topology="grid",
        n=16,
        config=default_scenario_config(max_rounds=500_000).replace(loss_probability=0.25),
    )
)

# --- Large-n sparse workloads (the event-driven engine's home turf) -----
# Registry entries stay CI-sized (a couple of thousand nodes, seconds per
# trial); docs/reproducing_results.md shows the same specs scaled to 10^4+
# via replace(n=...).  GF(2) + gf2bit keeps the rank-only state word-packed.
register_scenario(
    ScenarioSpec(
        name="event/er-logn",
        description=(
            "Uniform AG over GF(2) on connected G(n, 2·log n/n), asynchronous, "
            "run by the event-driven sparse engine with the gf2bit backend"
        ),
        topology="erdos_renyi_logn",
        n=2048,
        k=8,
        engine="event",
        backend="gf2bit",
        config=default_scenario_config(
            time_model=TimeModel.ASYNCHRONOUS, field_size=2
        ),
        trials=3,
    )
)
register_scenario(
    ScenarioSpec(
        name="event/ring-of-cliques",
        description=(
            "Uniform AG over GF(2) on a ring of 8 cliques (dense pockets, "
            "sparse bridges — a conductance-limited, slow-mixing workload), "
            "asynchronous, event-driven engine + gf2bit"
        ),
        topology="ring_of_cliques",
        n=256,
        k=8,
        engine="event",
        backend="gf2bit",
        topology_params={"cliques": 8},
        config=default_scenario_config(
            time_model=TimeModel.ASYNCHRONOUS, field_size=2
        ),
        trials=3,
    )
)
