"""Placements: how the ``k`` source messages are initially placed at nodes.

(Formerly ``repro.experiments.workloads``, which still re-exports everything
here; the placement vocabulary is part of the scenario layer now, so that a
:class:`~repro.scenarios.ScenarioSpec` can name its placement declaratively.)

The paper's k-dissemination setting allows any initial placement ("k initial
messages located at some nodes; a node can hold more than one initial
message").  The placements below cover the cases the evaluation needs:

* :func:`all_to_all_placement` — the all-to-all special case ``k = n`` with
  exactly one message per node;
* :func:`spread_placement` — ``k <= n`` messages at ``k`` distinct evenly
  spaced nodes (the generic k-dissemination workload);
* :func:`single_source_placement` — all ``k`` messages at one node (the
  1-source multicast workload and the worst case for distance-driven bounds);
* :func:`random_placement` — each message at an independently uniform node
  (nodes may hold several messages);
* :func:`adversarial_far_placement` — all messages as far as possible from a
  target node, the worst case the queueing reduction of Theorem 1 allows.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..errors import SimulationError
from ..graphs.csr import CSRGraph, csr_bfs_distances

__all__ = [
    "Placement",
    "all_to_all_placement",
    "spread_placement",
    "single_source_placement",
    "random_placement",
    "adversarial_far_placement",
    "validate_placement",
]

#: Node id → list of source message indices initially stored there.
Placement = dict[int, list[int]]


def _ordered_nodes(graph) -> range | list[int]:
    """Sorted node sequence without materialising a list for a CSRGraph.

    A CSRGraph's nodes are exactly ``0..n-1``, so ``range(n)`` *is* the sorted
    node sequence — placements built against either representation of the
    same topology are therefore identical dicts.
    """
    if isinstance(graph, CSRGraph):
        return range(graph.number_of_nodes())
    return sorted(graph.nodes())


def validate_placement(graph: nx.Graph, k: int, placement: Placement) -> None:
    """Check that every message index ``0..k-1`` is placed at an existing node."""
    seen: set[int] = set()
    for node, indices in placement.items():
        if node not in graph:
            raise SimulationError(f"placement references unknown node {node}")
        for index in indices:
            if not 0 <= int(index) < k:
                raise SimulationError(f"message index {index} out of range for k={k}")
            seen.add(int(index))
    missing = set(range(k)) - seen
    if missing:
        raise SimulationError(f"messages {sorted(missing)} are not placed anywhere")


def all_to_all_placement(graph: nx.Graph) -> Placement:
    """One message per node (``k = n``): the all-to-all communication special case."""
    nodes = _ordered_nodes(graph)
    return {node: [index] for index, node in enumerate(nodes)}


def spread_placement(graph: nx.Graph, k: int) -> Placement:
    """``k`` messages at ``k`` (approximately) evenly spaced distinct nodes."""
    nodes = _ordered_nodes(graph)
    n = len(nodes)
    if not 1 <= k <= n:
        raise SimulationError(f"spread placement requires 1 <= k <= n, got k={k}, n={n}")
    placement: Placement = {}
    for index in range(k):
        node = nodes[(index * n) // k]
        placement.setdefault(node, []).append(index)
    return placement


def single_source_placement(graph: nx.Graph, k: int, source: int | None = None) -> Placement:
    """All ``k`` messages at one node (defaults to the lowest-numbered node)."""
    nodes = _ordered_nodes(graph)
    if k < 1:
        raise SimulationError(f"k must be positive, got {k}")
    chosen = nodes[0] if source is None else source
    if chosen not in graph:
        raise SimulationError(f"source node {chosen} is not in the graph")
    return {chosen: list(range(k))}


def random_placement(graph: nx.Graph, k: int, rng: np.random.Generator) -> Placement:
    """Each message at an independently uniform random node."""
    nodes = _ordered_nodes(graph)
    if k < 1:
        raise SimulationError(f"k must be positive, got {k}")
    placement: Placement = {}
    for index in range(k):
        node = nodes[int(rng.integers(0, len(nodes)))]
        placement.setdefault(node, []).append(index)
    return placement


def adversarial_far_placement(graph: nx.Graph, k: int, target: int) -> Placement:
    """All ``k`` messages as far (in hops) from ``target`` as possible.

    This is the worst case permitted by Theorem 1/2 ("customers initially
    distributed arbitrarily"); it maximises the distance every message must
    travel to reach ``target``.
    """
    if target not in graph:
        raise SimulationError(f"target node {target} is not in the graph")
    if k < 1:
        raise SimulationError(f"k must be positive, got {k}")
    if isinstance(graph, CSRGraph):
        # Same ordering as the networkx branch: distance descending, node id
        # ascending within a distance class (the sort key below is total, so
        # the stable lexsort and sorted() agree exactly; BFS reaches every
        # node of the connected graph, matching dict_keys coverage).
        hops = csr_bfs_distances(graph.indptr, graph.indices, target)
        farthest = np.lexsort((np.arange(hops.size), -hops)).tolist()
    else:
        distances = nx.single_source_shortest_path_length(graph, target)
        farthest = sorted(distances, key=lambda node: (-distances[node], node))
    placement: Placement = {}
    for index in range(k):
        node = farthest[index % len(farthest)]
        placement.setdefault(node, []).append(index)
    return placement
