"""Decade-sweep spec helpers for asymptotic campaigns.

An asymptotic stopping-time measurement is a family of otherwise-identical
scenarios whose sizes walk up the decades: ``n = 10^3, 10^4, ..., 10^6``.
:func:`decade_ns` generates those sizes deterministically and
:func:`decade_sweep` turns a base :class:`~repro.scenarios.ScenarioSpec`
into one spec per size — the shape the built-in ``asymptotics`` campaign
(:func:`repro.campaigns.registry.asymptotics_campaign`) and the exponent
fit (:func:`repro.analysis.fit_decades`) consume.

Topology parameters may need to scale with ``n``: a ``ring_of_cliques``
with a *fixed* clique count densifies quadratically as ``n`` grows (a
``cliques=8`` ring at ``n = 10^6`` would hold ~6·10^10 intra-clique
edges).  ``decade_sweep`` therefore accepts a callable
``topology_params(n)``, and :func:`log_sized_cliques` is the standard
choice for the ring family: clique size ``≈ log2 n``, the
``cliques = Θ(n / log n)`` parameterisation the builder's own docstring
names, keeping the edge count ``O(n log n)`` at every decade.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping

from ..errors import ConfigurationError
from .spec import ScenarioSpec

__all__ = ["decade_ns", "decade_sweep", "log_sized_cliques"]


def decade_ns(
    min_n: int, max_n: int, *, points_per_decade: int = 1
) -> tuple[int, ...]:
    """The sizes of a decade sweep: geometric steps from ``min_n`` to ``max_n``.

    Size ``i`` is ``round(min_n · 10^(i / points_per_decade))``; the
    sequence stops at the last value not exceeding ``max_n``.  Fewer than
    two resulting sizes raise :class:`~repro.errors.ConfigurationError` — a
    single size cannot support an exponent fit.

    >>> decade_ns(1000, 1_000_000)
    (1000, 10000, 100000, 1000000)
    >>> decade_ns(1000, 10_000, points_per_decade=2)
    (1000, 3162, 10000)
    """
    if min_n < 2:
        raise ConfigurationError(f"decade sweep needs min_n >= 2, got {min_n}")
    if points_per_decade < 1:
        raise ConfigurationError(
            f"points_per_decade must be positive, got {points_per_decade}"
        )
    if max_n < min_n:
        raise ConfigurationError(
            f"decade sweep needs max_n >= min_n, got min_n={min_n} max_n={max_n}"
        )
    sizes: list[int] = []
    index = 0
    while True:
        value = int(round(min_n * 10.0 ** (index / points_per_decade)))
        if value > max_n:
            break
        if not sizes or value != sizes[-1]:
            sizes.append(value)
        index += 1
    if len(sizes) < 2:
        raise ConfigurationError(
            f"decade sweep from min_n={min_n} to max_n={max_n} with "
            f"{points_per_decade} point(s) per decade yields only "
            f"{sizes or '[]'} — raise max_n or points_per_decade so the "
            "sweep has at least two sizes (one size cannot fit an exponent)"
        )
    return tuple(sizes)


def log_sized_cliques(n: int) -> dict[str, int]:
    """``ring_of_cliques`` parameters with clique size ``≈ log2 n``.

    The ``cliques = Θ(n / log n)`` regime of the builder: the graph stays
    sparse (``O(n log n)`` edges) at every decade while keeping the
    single-edge inter-clique bottlenecks that make the family
    conductance-limited.
    """
    if n < 2:
        raise ConfigurationError(f"log_sized_cliques needs n >= 2, got {n}")
    size = max(4, int(round(math.log2(n))))
    return {"cliques": max(3, n // size)}


def decade_sweep(
    base: ScenarioSpec,
    *,
    min_n: int = 1_000,
    max_n: int = 1_000_000,
    points_per_decade: int = 1,
    trials: "int | None" = None,
    topology_params: "Callable[[int], Mapping[str, Any]] | Mapping[str, Any] | None" = None,
) -> tuple[ScenarioSpec, ...]:
    """One spec per decade size, derived from ``base`` by :meth:`~repro.scenarios.ScenarioSpec.replace`.

    The returned specs differ from ``base`` only in ``n`` (and, when given,
    ``trials`` and ``topology_params``); registry identity (``name``,
    ``description``) is cleared so each campaign unit names its own decade.
    ``topology_params`` may be a plain mapping applied at every size or a
    callable ``params(n)`` for families whose parameters must scale with
    ``n`` (see :func:`log_sized_cliques`).
    """
    specs: list[ScenarioSpec] = []
    for n in decade_ns(min_n, max_n, points_per_decade=points_per_decade):
        changes: dict[str, Any] = {"n": n, "name": "", "description": ""}
        if trials is not None:
            changes["trials"] = trials
        if topology_params is not None:
            params = topology_params(n) if callable(topology_params) else topology_params
            changes["topology_params"] = tuple(sorted(dict(params).items()))
        specs.append(base.replace(**changes))
    return tuple(specs)
