"""The scenario layer: declarative, named, JSON-round-trippable workloads.

One :class:`ScenarioSpec` describes a whole experiment — topology, size,
message placement, protocol, simulation config (including churn schedules
and heterogeneous activation rates), trial/seed plan — and drives the same
workload through the CLI, the sweep runner, the batched/parallel trial
runners and the benchmarks with identical seeded results.
"""

from .placements import (
    Placement,
    adversarial_far_placement,
    all_to_all_placement,
    random_placement,
    single_source_placement,
    spread_placement,
    validate_placement,
)
from .registry import SCENARIOS, get_scenario, register_scenario, scenario_names
from .spec import (
    ACTIVATION_KINDS,
    PLACEMENTS,
    PROTOCOLS,
    TREE_PROTOCOLS,
    MaterializedScenario,
    ScenarioSpec,
    SpanningTreeFactory,
    TagFactory,
    UniformGossipFactory,
    default_scenario_config,
    scenario_case,
)
from .sweeps import decade_ns, decade_sweep, log_sized_cliques

__all__ = [
    "Placement",
    "adversarial_far_placement",
    "all_to_all_placement",
    "random_placement",
    "single_source_placement",
    "spread_placement",
    "validate_placement",
    "SCENARIOS",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "ACTIVATION_KINDS",
    "PLACEMENTS",
    "PROTOCOLS",
    "TREE_PROTOCOLS",
    "MaterializedScenario",
    "ScenarioSpec",
    "SpanningTreeFactory",
    "TagFactory",
    "UniformGossipFactory",
    "default_scenario_config",
    "scenario_case",
    "decade_ns",
    "decade_sweep",
    "log_sized_cliques",
]
