# Development entry points.  Everything runs from a bare checkout: src/ is
# put on sys.path by conftest.py (tests) or PYTHONPATH (direct invocations),
# so no editable install is required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke docs-check

## Tier-1 test suite (unit + property + integration).
test:
	$(PYTHON) -m pytest -x -q

## Scaled-down benchmark pass: proves the harness and the batch fast path
## work without paying full benchmark sizes.  The full reproduction is
## `pytest benchmarks/<script> --benchmark-only` per script.
bench-smoke:
	REPRO_BENCH_BATCH_N=32 REPRO_BENCH_BATCH_TRIALS=8 \
		$(PYTHON) -m pytest benchmarks/bench_batch_core.py --benchmark-only -q
	$(PYTHON) -m repro experiment E1-uniform-ag --trials 2

## Documentation drift check: executes every fenced Python block in
## README.md and the quickstart example they mirror.
docs-check:
	$(PYTHON) -m pytest tests/test_docs.py -q
