# Development entry points.  Everything runs from a bare checkout: src/ is
# put on sys.path by conftest.py (tests) or PYTHONPATH (direct invocations),
# so no editable install is required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-slow bench-smoke bench-json bench-check backend-check event-check csr-check numba-check scenarios-check store-check docs-check docs-api docs-api-check campaigns-check asymptotics-check

## Tier-1 test suite (unit + property + integration).  Tests marked `slow`
## (the large batch-vs-scalar equivalence sweeps) are skipped here.  The
## second invocation is the doctest lane: the docstring examples on the
## declarative layers (ScenarioSpec, ResultStore, the campaign classes) are
## executable documentation and run under --doctest-modules.
test:
	$(PYTHON) -m pytest -x -q
	$(PYTHON) -m pytest --doctest-modules -q \
		src/repro/backends/__init__.py \
		src/repro/scenarios/spec.py src/repro/scenarios/registry.py \
		src/repro/scenarios/sweeps.py \
		src/repro/store/result_store.py src/repro/analysis/tables.py \
		src/repro/campaigns

## Everything, including the slow-marked equivalence sweeps.
test-slow:
	$(PYTHON) -m pytest -x -q --run-slow

## Scaled-down benchmark pass: proves the harness and both batch fast paths
## (uniform AG and TAG) work without paying full benchmark sizes.  The
## speedup floors are lowered to match the smoke sizes; the full-size floors
## are asserted by `make bench-json`.  The full reproduction is
## `pytest benchmarks/<script> --benchmark-only` per script.
bench-smoke:
	REPRO_BENCH_BATCH_N=32 REPRO_BENCH_BATCH_TRIALS=8 REPRO_BENCH_BATCH_MIN_SPEEDUP=2 \
		$(PYTHON) -m pytest benchmarks/bench_batch_core.py --benchmark-only -q
	REPRO_BENCH_TAG_N=32 REPRO_BENCH_TAG_TRIALS=8 REPRO_BENCH_TAG_MIN_SPEEDUP=2 \
		$(PYTHON) -m pytest benchmarks/bench_batch_tag.py --benchmark-only -q
	$(PYTHON) -m repro experiment E1-uniform-ag --trials 2

## Full-size perf benchmarks with machine-readable results: asserts the >=5x
## speedup floors at n=128 and writes benchmarks/output/BENCH_*.json
## (timings, speedup, workload, git rev) for cross-revision tracking.
bench-json:
	$(PYTHON) -m pytest benchmarks/bench_batch_core.py benchmarks/bench_batch_tag.py \
		benchmarks/bench_backend_gf2.py benchmarks/bench_event_engine.py \
		--benchmark-only -q
	@ls -l benchmarks/output/BENCH_*.json

## Perf-trajectory guard: fails if any committed BENCH_*.json record's batch
## speedup sits below its asserted floor (or if no records exist at all).
bench-check:
	$(PYTHON) benchmarks/check_regression.py

## Compute-backend contract: the full conformance suite (every registered
## backend vs the numpy reference — kernels, eliminator traces, end-to-end
## scenario equivalence, typed q!=2 refusal, store invariance) plus a
## scaled-down run of the GF(2) backend benchmark proving gf2bit is faster
## *and* bit-identical on the all-to-all workload.  The full-size >=5x floor
## is asserted by `make bench-json` / the committed BENCH record.
backend-check:
	$(PYTHON) -m pytest tests/test_backend_conformance.py -q
	REPRO_BENCH_GF2_N=48 REPRO_BENCH_GF2_TRIALS=4 REPRO_BENCH_GF2_MIN_SPEEDUP=2 \
		$(PYTHON) -m pytest benchmarks/bench_backend_gf2.py --benchmark-only -q

## Event-driven engine contract: the full equivalence/refusal/dispatch suite
## (event vs scalar bit-identity over both time models, churn, rates, loss;
## single-problem eliminator fast paths; typed EngineError refusals) plus a
## scaled-down run of the crossover benchmark proving the event engine is
## faster than the lockstep batch engine *and* bit-identical to it.  The
## full-size >=1.5x floor at n=4096 is asserted by `make bench-json` / the
## committed BENCH record.
event-check:
	$(PYTHON) -m pytest tests/test_event_engine.py -q
	REPRO_BENCH_EVENT_MAX_N=512 REPRO_BENCH_EVENT_TRIALS=2 REPRO_BENCH_EVENT_MIN_SPEEDUP=1.2 \
		$(PYTHON) -m pytest benchmarks/bench_event_engine.py --benchmark-only -q

## Graph-free CSR pipeline contract: the builder equivalence matrix (every
## direct-CSR generator byte-identical to csr_adjacency of its networkx
## reference), pipeline bit-identity (materialize_csr == materialize, field
## for field), the typed refusals, plus a scaled-down run of the pipeline
## crossover benchmark.  At smoke sizes the RSS ratio tends to 1 (the
## interpreter baseline dominates), so both floors are lowered; the >=5x /
## >=2x full-size floors live in the committed BENCH_E13 record, guarded by
## `make bench-check`.
csr-check:
	$(PYTHON) -m pytest tests/test_csr_pipeline.py tests/test_event_kernel.py -q
	REPRO_BENCH_CSR_N=2048 REPRO_BENCH_CSR_TRIALS=2 \
	REPRO_BENCH_CSR_MIN_SPEEDUP=1.5 REPRO_BENCH_CSR_MIN_RSS_REDUCTION=0.9 \
		$(PYTHON) -m pytest benchmarks/bench_csr_pipeline.py --benchmark-only -q

## Jitted event-kernel parity: with numba installed, the parity matrix in
## tests/test_event_kernel.py runs the kernel against the pure-python loop
## per seed/action/loss and against the networkx pipeline.  Without numba the
## same file still asserts the fallback contract (empty kernel slot, results
## unchanged) — the parametrised parity cases simply skip.
numba-check:
	$(PYTHON) -m pytest tests/test_event_kernel.py -q -rs

## Scenario-registry health check: materialise and smoke-run (1 trial) every
## registered scenario through the CLI.
scenarios-check:
	$(PYTHON) -m repro scenario check

## Result-store guarantees: shard integrity / concurrency semantics and the
## resume contract (a sweep interrupted mid-way and resumed from its store is
## bit-identical to an uninterrupted run; a fully cached rerun computes
## nothing and is >= 10x faster than the cold run).
store-check:
	$(PYTHON) -m pytest tests/test_store.py tests/test_store_resume.py -q

## Documentation drift check: executes every fenced Python block in
## README.md and the quickstart example they mirror.
docs-check:
	$(PYTHON) -m pytest tests/test_docs.py -q

## Regenerate the Markdown API reference (docs/api/) for the public
## repro.scenarios / repro.store / repro.campaigns surfaces.
docs-api:
	$(PYTHON) tools/gen_api_docs.py

## Fail if docs/api/ drifted from the code (CI runs this via campaigns-check).
docs-api-check:
	$(PYTHON) tools/gen_api_docs.py --check

## Campaign-layer health check: a smoke-size built-in campaign end-to-end
## through a scratch store (cold run computes, immediate rerun must be fully
## cached), both report formats rendered, and the API-reference drift check.
campaigns-check:
	rm -rf benchmarks/output/campaigns-check
	$(PYTHON) -m repro campaign run table1 --trials 1 \
		--store benchmarks/output/campaigns-check/store \
		--report-dir benchmarks/output/campaigns-check/report
	$(PYTHON) -m repro campaign run table1 --trials 1 \
		--store benchmarks/output/campaigns-check/store \
		--report-dir benchmarks/output/campaigns-check/report \
		| grep -q "0 newly computed"
	test -s benchmarks/output/campaigns-check/report/report.md
	test -s benchmarks/output/campaigns-check/report/report.html
	$(PYTHON) -m repro campaign report table1 --trials 1 \
		--store benchmarks/output/campaigns-check/store \
		--report-dir benchmarks/output/campaigns-check/report-offline \
		--format md > /dev/null
	$(PYTHON) tools/gen_api_docs.py --check

## Asymptotics-campaign health check: a smoke-size decade sweep end-to-end
## through a scratch store (cold run computes, immediate rerun must be fully
## cached), both report formats rendered, plus a scaled-down run of the
## streaming-summary benchmark.  At smoke sizes the record-bytes
## ratio shrinks with n (full records carry n completion-round entries), so
## the bytes floor is lowered; the full-size >=50x floor lives in the
## committed BENCH_E14 record, guarded by `make bench-check`.
asymptotics-check:
	rm -rf benchmarks/output/asymptotics-check
	$(PYTHON) -m repro campaign run asymptotics --min-n 160 --max-n 1600 --trials 2 \
		--store benchmarks/output/asymptotics-check/store \
		--report-dir benchmarks/output/asymptotics-check/report
	$(PYTHON) -m repro campaign run asymptotics --min-n 160 --max-n 1600 --trials 2 \
		--store benchmarks/output/asymptotics-check/store \
		--report-dir benchmarks/output/asymptotics-check/report \
		| grep -q "0 newly computed"
	test -s benchmarks/output/asymptotics-check/report/report.md
	test -s benchmarks/output/asymptotics-check/report/report.html
	REPRO_BENCH_ASY_MIN_N=160 REPRO_BENCH_ASY_MAX_N=1600 REPRO_BENCH_ASY_TRIALS=2 \
	REPRO_BENCH_ASY_MIN_BYTES_RATIO=5 REPRO_BENCH_ASY_MIN_R2=0.5 \
		$(PYTHON) -m pytest benchmarks/bench_asymptotics.py --benchmark-only -q
