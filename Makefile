# Development entry points.  Everything runs from a bare checkout: src/ is
# put on sys.path by conftest.py (tests) or PYTHONPATH (direct invocations),
# so no editable install is required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-slow bench-smoke bench-json bench-check scenarios-check store-check docs-check

## Tier-1 test suite (unit + property + integration).  Tests marked `slow`
## (the large batch-vs-scalar equivalence sweeps) are skipped here.
test:
	$(PYTHON) -m pytest -x -q

## Everything, including the slow-marked equivalence sweeps.
test-slow:
	$(PYTHON) -m pytest -x -q --run-slow

## Scaled-down benchmark pass: proves the harness and both batch fast paths
## (uniform AG and TAG) work without paying full benchmark sizes.  The
## speedup floors are lowered to match the smoke sizes; the full-size floors
## are asserted by `make bench-json`.  The full reproduction is
## `pytest benchmarks/<script> --benchmark-only` per script.
bench-smoke:
	REPRO_BENCH_BATCH_N=32 REPRO_BENCH_BATCH_TRIALS=8 REPRO_BENCH_BATCH_MIN_SPEEDUP=2 \
		$(PYTHON) -m pytest benchmarks/bench_batch_core.py --benchmark-only -q
	REPRO_BENCH_TAG_N=32 REPRO_BENCH_TAG_TRIALS=8 REPRO_BENCH_TAG_MIN_SPEEDUP=2 \
		$(PYTHON) -m pytest benchmarks/bench_batch_tag.py --benchmark-only -q
	$(PYTHON) -m repro experiment E1-uniform-ag --trials 2

## Full-size perf benchmarks with machine-readable results: asserts the >=5x
## speedup floors at n=128 and writes benchmarks/output/BENCH_*.json
## (timings, speedup, workload, git rev) for cross-revision tracking.
bench-json:
	$(PYTHON) -m pytest benchmarks/bench_batch_core.py benchmarks/bench_batch_tag.py \
		--benchmark-only -q
	@ls -l benchmarks/output/BENCH_*.json

## Perf-trajectory guard: fails if any committed BENCH_*.json record's batch
## speedup sits below its asserted floor (or if no records exist at all).
bench-check:
	$(PYTHON) benchmarks/check_regression.py

## Scenario-registry health check: materialise and smoke-run (1 trial) every
## registered scenario through the CLI.
scenarios-check:
	$(PYTHON) -m repro scenario check

## Result-store guarantees: shard integrity / concurrency semantics and the
## resume contract (a sweep interrupted mid-way and resumed from its store is
## bit-identical to an uninterrupted run; a fully cached rerun computes
## nothing and is >= 10x faster than the cold run).
store-check:
	$(PYTHON) -m pytest tests/test_store.py tests/test_store_resume.py -q

## Documentation drift check: executes every fenced Python block in
## README.md and the quickstart example they mirror.
docs-check:
	$(PYTHON) -m pytest tests/test_docs.py -q
