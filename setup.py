"""Setuptools entry point.

All project metadata lives in ``pyproject.toml``; this shim exists so the
package can also be installed in environments whose tooling predates PEP 660
editable wheels (``pip install -e . --no-use-pep517 --no-build-isolation`` or
``python setup.py develop``).
"""

from setuptools import setup

setup()
