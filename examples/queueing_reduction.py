"""Walk through the queueing reduction behind Theorem 1 (Figure 1 of the paper).

The proof bounds uniform algebraic gossip by watching helpful packets flow
towards one target node over a BFS tree and treating them as customers in a
feed-forward network of exponential-server queues.  This example builds every
object in that chain for a concrete graph, simulates both the real gossip and
the queueing system, and shows the ordering the theorem promises:

    measured gossip ≤ queueing simulation (p95) ≤ Theorem 2's closed form.

Run with::

    python examples/queueing_reduction.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import GF, AlgebraicGossip, Generation, SimulationConfig
from repro.analysis import run_trials
from repro.core import TimeModel
from repro.experiments import all_to_all_placement
from repro.graphs import grid_graph, profile_graph
from repro.queueing import QueueingReduction


def main() -> None:
    graph = grid_graph(16)
    profile = profile_graph(graph)
    n = profile.n
    k = n
    print(f"Graph: 4x4 grid — {profile.describe()}")
    print(f"Task: all-to-all dissemination (k = n = {k}), synchronous EXCHANGE, q = 2\n")

    # --- The reduction objects -------------------------------------------------
    reduction = QueueingReduction(graph, k=k, q=2, time_model=TimeModel.SYNCHRONOUS)
    tree = reduction.bfs_tree(0)
    print(f"Step 1 — BFS tree rooted at node 0: depth l_max = {tree.depth} ≤ D = {profile.diameter}")
    print(f"Step 2 — worst-case service probability per round: μ = {reduction.service_rate():.4f} "
          f"(= (1 - 1/q)/Δ with q=2, Δ={profile.max_degree})")

    prediction = reduction.predict_for_root(0, np.random.default_rng(0), trials=500)
    print(f"Step 3 — queueing system Q_tree: simulated p95 stopping time "
          f"{prediction.simulated_whp:.1f} rounds; Theorem 2 closed form "
          f"{prediction.analytic_bound:.1f} rounds")

    # --- The real protocol ------------------------------------------------------
    config = SimulationConfig(field_size=2, payload_length=2,
                              time_model=TimeModel.SYNCHRONOUS, max_rounds=100_000)

    def factory(g, rng):
        generation = Generation.random(GF(2), k, 2, rng)
        return AlgebraicGossip(g, generation, all_to_all_placement(g), config, rng)

    stats = run_trials(graph, factory, config, trials=5, seed=3)
    print(f"\nMeasured uniform algebraic gossip over 5 trials: {stats.summary()}")

    bound = reduction.predicted_rounds_upper_bound()
    print(f"\nOrdering promised by Theorem 1:")
    print(f"  measured p95 ({stats.whp:.1f})  ≤  queueing p95 ({prediction.simulated_whp:.1f})"
          f"  ≤  closed form ({bound:.1f})")
    assert stats.whp <= prediction.simulated_whp <= bound * 1.01
    print("  ... holds on this instance.")
    print(f"\n{reduction.describe()}")


if __name__ == "__main__":
    main()
