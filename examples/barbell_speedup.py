"""The barbell experiment: where uniform gossip struggles and TAG shines.

The barbell graph (two cliques joined by a single edge) is the paper's
worst-case example for uniform algebraic gossip: the bottleneck edge is chosen
with probability only ~2/n per round, so pushing n messages across it takes
Ω(n²) rounds.  TAG sidesteps the problem: its spanning tree pins the bottleneck
edge as a parent link, so it is exercised on *every* wakeup of its child, and
the whole dissemination finishes in Θ(n) rounds.

Run with::

    python examples/barbell_speedup.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import fit_power_law, run_sweep, tag_with_brr_upper_bound
from repro.experiments import default_config, format_comparison, tag_case, uniform_ag_case


def main() -> None:
    sizes = [8, 12, 16, 24]
    trials = 2
    config = default_config(max_rounds=1_000_000)

    print("Running uniform algebraic gossip and TAG + B_RR on barbell graphs "
          f"(k = n, {trials} trials per size)...\n")
    uniform_points = run_sweep(
        [uniform_ag_case("barbell", n, n, config=config, label=f"uniform n={n}", value=n)
         for n in sizes],
        trials=trials, seed=1,
    )
    tag_points = run_sweep(
        [tag_case("barbell", n, n, spanning_tree="brr", config=config,
                  label=f"TAG n={n}", value=n)
         for n in sizes],
        trials=trials, seed=2,
    )

    print(f"{'n':>4} {'uniform AG (rounds)':>22} {'TAG+BRR (rounds)':>18} "
          f"{'speed-up':>9} {'Θ(n) bound':>11}")
    for uniform, tag in zip(uniform_points, tag_points):
        n = int(uniform.value)
        print(f"{n:>4} {uniform.mean:>22.1f} {tag.mean:>18.1f} "
              f"{uniform.mean / tag.mean:>9.2f} {tag_with_brr_upper_bound(n, n):>11.1f}")

    uniform_fit = fit_power_law(sizes, [p.mean for p in uniform_points])
    tag_fit = fit_power_law(sizes, [p.mean for p in tag_points])
    print(f"\nGrowth exponents: uniform AG ≈ n^{uniform_fit.exponent:.2f} "
          f"(heading to the Ω(n²) regime), TAG + B_RR ≈ n^{tag_fit.exponent:.2f} (Θ(n)).")
    print(format_comparison("TAG + B_RR", tag_points[-1].mean,
                            "uniform AG", uniform_points[-1].mean))
    print("\nThe paper's claim (Section 5): for k = Ω(n), TAG finishes in Θ(n) rounds "
          "on ANY graph, giving a speed-up ratio of order n on the barbell.")


if __name__ == "__main__":
    main()
