"""Theorem 3 in action: uniform algebraic gossip is Θ(k + D) on constant-degree graphs.

Sweeps the network size on three constant-maximum-degree families (line, ring,
binary tree) with all-to-all workloads (k = n), prints the measured stopping
times next to the Θ(k + D) upper and lower bounds, and fits the growth
exponent — it should be ≈ 1 because both k and D grow linearly (line/ring) or
k dominates (binary tree).

Run with::

    python examples/constant_degree_scaling.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import (
    constant_degree_upper_bound,
    fit_power_law,
    k_dissemination_lower_bound,
    run_trials,
)
from repro.core import SimulationConfig
from repro.experiments import all_to_all_placement
from repro.gf import GF
from repro.graphs import binary_tree_graph, diameter, line_graph, ring_graph
from repro.protocols import AlgebraicGossip
from repro.rlnc import Generation

FAMILIES = {
    "line": line_graph,
    "ring": ring_graph,
    "binary_tree": binary_tree_graph,
}
SIZES = [8, 16, 24, 32]
TRIALS = 3


def factory_for(config):
    def factory(graph, rng):
        n = graph.number_of_nodes()
        generation = Generation.random(GF(16), n, 2, rng)
        return AlgebraicGossip(graph, generation, all_to_all_placement(graph), config, rng)

    return factory


def main() -> None:
    config = SimulationConfig(max_rounds=500_000)
    for name, builder in FAMILIES.items():
        print(f"\n=== {name} (constant maximum degree) ===")
        print(f"{'n':>4} {'D':>4} {'measured mean':>14} {'upper k+D':>10} {'lower (k+D)/2':>14} {'ratio':>6}")
        means = []
        for n in SIZES:
            graph = builder(n)
            actual_n = graph.number_of_nodes()
            d = diameter(graph)
            stats = run_trials(graph, factory_for(config), config, trials=TRIALS, seed=42)
            upper = constant_degree_upper_bound(actual_n, d)
            lower = k_dissemination_lower_bound(actual_n, d, synchronous=True)
            means.append(stats.mean)
            print(f"{actual_n:>4} {d:>4} {stats.mean:>14.1f} {upper:>10.1f} "
                  f"{lower:>14.1f} {stats.mean / upper:>6.2f}")
        fit = fit_power_law(SIZES, means)
        print(f"growth exponent vs n: {fit.exponent:.2f} (Θ(k + D) = Θ(n) predicts ≈ 1)")

    print("\nTheorem 3: on constant-maximum-degree graphs uniform algebraic gossip "
          "is order optimal — the measured curves stay between the Ω(k + D) lower "
          "bound and a constant multiple of the k + D upper bound.")


if __name__ == "__main__":
    main()
