"""Watch an algebraic-gossip run progress: rank evolution and message complexity.

Prints an ASCII rank-evolution curve (minimum / median / maximum decoder rank
per round) for uniform algebraic gossip on a grid, the round by which 50% /
90% / 100% of the nodes finished, and the message/bit accounting of the run
next to the information-theoretic minimum of n·k helpful receptions.

Run with::

    python examples/rank_evolution.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import GF, AlgebraicGossip, Generation, SimulationConfig
from repro.analysis import ProgressRecorder, message_complexity, rounds_to_fraction_complete
from repro.experiments import all_to_all_placement
from repro.gossip import GossipEngine
from repro.graphs import grid_graph


def ascii_bar(value: float, maximum: float, width: int = 40) -> str:
    filled = int(round(width * value / maximum)) if maximum else 0
    return "#" * filled + "." * (width - filled)


def main() -> None:
    graph = grid_graph(25)
    n = graph.number_of_nodes()
    k = n
    config = SimulationConfig(field_size=16, payload_length=2, max_rounds=10_000)
    rng = np.random.default_rng(11)
    generation = Generation.random(GF(16), k, 2, rng)
    inner = AlgebraicGossip(graph, generation, all_to_all_placement(graph), config, rng)
    recorder = ProgressRecorder(inner)
    result = GossipEngine(graph, recorder, config, rng).run()

    print(f"Uniform algebraic gossip, all-to-all on a 5x5 grid: {result.summary()}\n")
    print(f"{'round':>5}  {'min rank':>8}  {'median':>6}  {'max':>4}  min-rank progress")
    for snap in recorder.snapshots:
        bar = ascii_bar(snap.min_rank, k)
        print(f"{snap.round_index:>5}  {snap.min_rank:>8}  {snap.median_rank:>6.1f}  "
              f"{snap.max_rank:>4}  {bar}")

    print()
    for fraction in (0.5, 0.9, 1.0):
        round_index = rounds_to_fraction_complete(recorder, fraction)
        print(f"{int(fraction * 100):>3}% of nodes finished by round {round_index}")

    accounting = message_complexity(
        result, payload_length=config.payload_length, field_size=config.field_size, seeded=k
    )
    print("\nMessage complexity:")
    for key, value in accounting.as_dict().items():
        print(f"  {key}: {value}")
    print(f"\nEvery node needs k = {k} helpful packets, so at least n·k − n = "
          f"{accounting.minimum_helpful} helpful receptions were necessary; the run used "
          f"{accounting.packets_sent} transmissions "
          f"({accounting.overhead_factor:.2f}x the minimum).")


if __name__ == "__main__":
    main()
