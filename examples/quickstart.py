"""Quickstart: disseminate k messages with algebraic gossip and decode them.

Run with::

    python examples/quickstart.py

The script walks through the library's layers explicitly (field → generation →
placement → protocol → engine) so you can see every moving part once; the
one-liner equivalent is ``repro.quick_run("grid", n=25, k=10)``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import GF, AlgebraicGossip, Generation, SimulationConfig
from repro.core import GossipAction, TimeModel
from repro.experiments import spread_placement
from repro.gossip import EventTrace, GossipEngine
from repro.graphs import grid_graph, profile_graph


def main() -> None:
    # 1. The network: a 5x5 grid (constant maximum degree 4).
    graph = grid_graph(25)
    profile = profile_graph(graph)
    print(f"Topology: 2-D grid — {profile.describe()}")

    # 2. The payload: k = 10 messages of 4 symbols over GF(16).
    field = GF(16)
    rng = np.random.default_rng(7)
    generation = Generation.random(field, k=10, payload_length=4, rng=rng)
    placement = spread_placement(graph, generation.k)
    print(f"Generation: k={generation.k} messages, r={generation.payload_length} "
          f"symbols each, field GF({field.order})")
    print(f"Initial placement: {{node: message indices}} = {placement}")

    # 3. The protocol: uniform algebraic gossip with EXCHANGE (the paper's setting).
    config = SimulationConfig(
        field_size=16,
        payload_length=4,
        time_model=TimeModel.SYNCHRONOUS,
        action=GossipAction.EXCHANGE,
        max_rounds=10_000,
    )
    process = AlgebraicGossip(graph, generation, placement, config, rng)

    # 4. Run it, tracing every delivered packet.
    trace = EventTrace()
    result = GossipEngine(graph, process, config, rng, trace).run()
    print(f"\nRun: {result.summary()}")
    print(f"Helpful fraction of transmitted packets: {result.helpful_fraction:.2%}")

    # 5. Every node can now solve its linear system and recover the originals.
    decoded = process.decoded_messages(node=24)
    assert (decoded == generation.payload_matrix).all()
    print("Node 24 decoded all messages correctly:", decoded.tolist())

    # 6. Compare against the paper's Theorem 1 bound.
    from repro.analysis import uniform_ag_upper_bound

    bound = uniform_ag_upper_bound(profile.n, generation.k, profile.diameter, profile.max_degree)
    print(f"\nTheorem 1 bound (k + ln n + D)·Δ = {bound:.1f} rounds; "
          f"measured {result.rounds} rounds — ratio {result.rounds / bound:.2f}")

    # 7. A few trace statistics.
    per_round = trace.messages_per_round()
    busiest = max(per_round, key=per_round.get)
    print(f"Busiest round: {busiest} with {per_round[busiest]} delivered packets")


if __name__ == "__main__":
    main()
