"""Section 6: TAG with the IS protocol on graphs with large weak conductance.

The barbell has terrible conductance (one bridge edge) but excellent *weak*
conductance: each clique on its own mixes in O(log n) rounds.  The IS protocol
exploits that to build a spanning tree in polylog(n) rounds, and TAG then
disseminates k messages in Θ(k) more rounds.  This example

1. computes the (surrogate) weak conductance of the barbell and a clique chain,
2. measures how long the IS protocol needs to build its spanning tree, and
3. runs TAG + IS for a sweep of k and shows the linear-in-k behaviour of
   Theorems 7/8.

Run with::

    python examples/weak_conductance_is.py
"""

from __future__ import annotations

import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.analysis import fit_linear, is_protocol_upper_bound, run_sweep, scaling_table
from repro.core import SimulationConfig
from repro.experiments import default_config, tag_case
from repro.gossip import GossipEngine
from repro.graphs import barbell_graph, clique_chain_graph, graph_conductance, weak_conductance
from repro.protocols import ISSpanningTree


def main() -> None:
    n = 24
    graphs = {
        "barbell": barbell_graph(n),
        "clique_chain (c=3)": clique_chain_graph(n, cliques=3),
    }

    print("=== Weak conductance vs ordinary conductance ===")
    for name, graph in graphs.items():
        phi = graph_conductance(graph)
        phi_c = weak_conductance(graph, c=3)
        print(f"{name:>20}: Φ(G) ≈ {phi:.4f}   Φ_3(G) ≈ {phi_c:.4f}   "
              f"(IS bound O(c(log n + log δ⁻¹)/Φ_c + c²) ≈ "
              f"{is_protocol_upper_bound(graph.number_of_nodes(), 3, phi_c):.1f} rounds)")

    print("\n=== IS spanning-tree construction time ===")
    config = SimulationConfig(max_rounds=10_000)
    for name, graph in graphs.items():
        rounds = []
        for seed in range(5):
            rng = np.random.default_rng(seed)
            protocol = ISSpanningTree(graph, rng)
            rounds.append(GossipEngine(graph, protocol, config, rng).run().rounds)
        print(f"{name:>20}: mean {np.mean(rounds):.1f} rounds, max {max(rounds)} "
              f"(4·ln n = {4 * math.log(graph.number_of_nodes()):.1f})")

    print("\n=== TAG + IS on the barbell: stopping time vs k (Theorem 7) ===")
    ks = [6, 12, 18, 24]
    cases = [
        tag_case("barbell", n, k, spanning_tree="is",
                 config=default_config(max_rounds=500_000), label=f"k={k}", value=k)
        for k in ks
    ]
    points = run_sweep(cases, trials=3, seed=5)
    for row in scaling_table(points, value_header="k"):
        print(f"  k={row['k']:>3}: mean {row['mean_rounds']:>7} rounds, "
              f"p95 {row['p95_rounds']:>7}")
    fit = fit_linear(ks, [p.mean for p in points])
    print(f"\nLinear fit: rounds ≈ {fit.slope:.2f}·k + {fit.intercept:.1f} "
          f"(Θ(k) with a polylog additive term, as Theorem 7 predicts)")


if __name__ == "__main__":
    main()
