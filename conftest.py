"""Repository-level pytest configuration.

Puts ``src/`` on ``sys.path`` so the test suite and the benchmark harness work
even when the package has not been pip-installed (useful in offline
environments where editable installs need extra flags).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
