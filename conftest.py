"""Repository-level pytest configuration.

Puts ``src/`` on ``sys.path`` so the test suite and the benchmark harness work
even when the package has not been pip-installed (useful in offline
environments where editable installs need extra flags), and registers the
``slow`` marker: long-running sweeps (e.g. the large batch-vs-scalar
equivalence cross products) are excluded from the tier-1 run and enabled with
``pytest --run-slow`` (``make test-slow``).
"""

import pytest
import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow", action="store_true", default=False,
        help="also run tests marked slow (long equivalence sweeps)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running sweep excluded from tier-1; enable with --run-slow",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow"):
        return
    skip_slow = pytest.mark.skip(reason="slow: run with --run-slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
